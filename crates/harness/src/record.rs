//! Structured per-cell results: the JSON-lines schema and the stable
//! fingerprint hash asserted by golden-snapshot tests.

use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};
use tenoc_core::{RunMetrics, TelemetryReport};

/// How fast the simulator itself ran for one cell.
///
/// Carried on every [`RunRecord`] so sweeps double as engine performance
/// measurements, but deliberately **excluded** from the JSON form and the
/// fingerprint: wall time varies run to run and machine to machine, while
/// record files must stay byte-identical for golden checks and job-count
/// invariance.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct RunPerf {
    /// Wall-clock nanoseconds the cell's simulation took.
    pub wall_nanos: u64,
    /// Simulated interconnect cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
}

impl RunPerf {
    /// Builds a measurement from a cycle count and elapsed wall time.
    pub fn measure(sim_cycles: u64, wall_nanos: u64) -> Self {
        RunPerf {
            wall_nanos,
            sim_cycles_per_sec: sim_cycles as f64 / (wall_nanos.max(1) as f64 / 1e9),
        }
    }
}

/// One sweep cell's result, serialized as one JSON line.
///
/// The `fingerprint` field is the FNV-1a 64-bit hash (lower-case hex) of
/// the record's compact JSON with `fingerprint` itself set to the empty
/// string. Float fields are formatted with Rust's shortest round-trip
/// representation, so the hash is stable across runs, job counts and
/// processes of the same build.
///
/// `Serialize`/`Deserialize`/`PartialEq` are written by hand rather than
/// derived: the `perf` field must not appear in the JSON (see [`RunPerf`])
/// and two records are equal when their *serialized* forms are — the
/// determinism contract compares simulated results, not how long the host
/// machine took to produce them. A parsed record gets
/// `RunPerf::default()`.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Cell index within the grid (preset-major).
    pub cell: u64,
    /// Design-point label (e.g. `TB-DOR`).
    pub preset: String,
    /// Benchmark abbreviation (Table I).
    pub benchmark: String,
    /// Traffic-class label (`LL`/`LH`/`HH`).
    pub class: String,
    /// Kernel-length scale factor.
    pub scale: f64,
    /// Workload seed the cell ran with.
    pub seed: u64,
    /// Closed-loop metrics.
    pub metrics: RunMetrics,
    /// NoC area of the design point in mm².
    pub noc_area_mm2: f64,
    /// Total chip area of the design point in mm².
    pub chip_area_mm2: f64,
    /// Throughput-effectiveness (IPC per mm²) of this run.
    pub ipc_per_mm2: f64,
    /// Average dynamic NoC power over the run in watts (zero for ideal
    /// networks, which traverse no links).
    pub noc_dynamic_power_w: f64,
    /// Stability hash of every other field (see type docs).
    pub fingerprint: String,
    /// Engine speed for this cell (not serialized, not fingerprinted).
    pub perf: RunPerf,
    /// Telemetry reports when the cell ran with telemetry armed (not
    /// serialized, not fingerprinted, not compared). Like [`RunPerf`],
    /// this rides on the record as a side channel: the JSON-lines form,
    /// golden fingerprints and equality stay byte-identical whether
    /// telemetry was on or off, which is exactly the zero-cost-when-off
    /// contract the golden CI job proves. A parsed record gets `None`.
    pub telemetry: Option<Vec<TelemetryReport>>,
}

impl PartialEq for RunRecord {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `perf` and `telemetry`: equality over the
        // serialized content.
        self.cell == other.cell
            && self.preset == other.preset
            && self.benchmark == other.benchmark
            && self.class == other.class
            && self.scale == other.scale
            && self.seed == other.seed
            && self.metrics == other.metrics
            && self.noc_area_mm2 == other.noc_area_mm2
            && self.chip_area_mm2 == other.chip_area_mm2
            && self.ipc_per_mm2 == other.ipc_per_mm2
            && self.noc_dynamic_power_w == other.noc_dynamic_power_w
            && self.fingerprint == other.fingerprint
    }
}

impl Serialize for RunRecord {
    fn to_value(&self) -> Value {
        // Field order matches declaration order, as the derive would
        // produce; `perf` and `telemetry` are intentionally absent.
        Value::Object(vec![
            ("cell".to_string(), self.cell.to_value()),
            ("preset".to_string(), self.preset.to_value()),
            ("benchmark".to_string(), self.benchmark.to_value()),
            ("class".to_string(), self.class.to_value()),
            ("scale".to_string(), self.scale.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
            ("noc_area_mm2".to_string(), self.noc_area_mm2.to_value()),
            ("chip_area_mm2".to_string(), self.chip_area_mm2.to_value()),
            ("ipc_per_mm2".to_string(), self.ipc_per_mm2.to_value()),
            ("noc_dynamic_power_w".to_string(), self.noc_dynamic_power_w.to_value()),
            ("fingerprint".to_string(), self.fingerprint.to_value()),
        ])
    }
}

impl Deserialize for RunRecord {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(RunRecord {
            cell: Deserialize::from_value(v.field("cell")?)?,
            preset: Deserialize::from_value(v.field("preset")?)?,
            benchmark: Deserialize::from_value(v.field("benchmark")?)?,
            class: Deserialize::from_value(v.field("class")?)?,
            scale: Deserialize::from_value(v.field("scale")?)?,
            seed: Deserialize::from_value(v.field("seed")?)?,
            metrics: Deserialize::from_value(v.field("metrics")?)?,
            noc_area_mm2: Deserialize::from_value(v.field("noc_area_mm2")?)?,
            chip_area_mm2: Deserialize::from_value(v.field("chip_area_mm2")?)?,
            ipc_per_mm2: Deserialize::from_value(v.field("ipc_per_mm2")?)?,
            noc_dynamic_power_w: Deserialize::from_value(v.field("noc_dynamic_power_w")?)?,
            fingerprint: Deserialize::from_value(v.field("fingerprint")?)?,
            perf: RunPerf::default(),
            telemetry: None,
        })
    }
}

/// FNV-1a 64-bit over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl RunRecord {
    /// The fingerprint implied by the record's current field values.
    pub fn compute_fingerprint(&self) -> String {
        let mut blank = self.clone();
        blank.fingerprint = String::new();
        let canonical = serde_json::to_string(&blank).expect("record is plain data");
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }

    /// Computes and stores the fingerprint.
    pub fn seal(&mut self) {
        self.fingerprint = self.compute_fingerprint();
    }

    /// `true` if the stored fingerprint matches the field values.
    pub fn fingerprint_valid(&self) -> bool {
        self.fingerprint == self.compute_fingerprint()
    }

    /// Stable identity of the cell within a grid (for golden diffs).
    pub fn key(&self) -> String {
        format!("{}/{}@{}#{}", self.preset, self.benchmark, self.scale, self.seed)
    }
}

/// Serializes records as JSON lines (one compact object per line, trailing
/// newline).
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("record is plain data"));
        out.push('\n');
    }
    out
}

/// Parses JSON-lines text back into records; blank lines are skipped.
///
/// # Errors
///
/// Returns the underlying JSON error (tagged with the 1-based line
/// number) on malformed input.
pub fn from_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: RunRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
        out.push(record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let metrics = RunMetrics {
            completed: true,
            core_cycles: 1000,
            icnt_cycles: 464,
            scalar_insts: 12345,
            ipc: 12.345,
            avg_net_latency: 20.5,
            mc_injection_rate: 0.25,
            core_injection_rate: 0.05,
            mc_stall_fraction: 0.4,
            dram_efficiency: 0.5,
            l2_read_hit_rate: 0.3,
            accepted_flits_per_node: 0.125,
            core_replays: 7,
            flit_hops: 4096,
        };
        let mut r = RunRecord {
            cell: 3,
            preset: "TB-DOR".into(),
            benchmark: "HIS".into(),
            class: "LL".into(),
            scale: 0.02,
            seed: 0x7e0c,
            metrics,
            noc_area_mm2: 40.0,
            chip_area_mm2: 576.0,
            ipc_per_mm2: 12.345 / 576.0,
            noc_dynamic_power_w: 1.5,
            fingerprint: String::new(),
            perf: RunPerf::default(),
            telemetry: None,
        };
        r.seal();
        r
    }

    #[test]
    fn fingerprint_is_stable_and_validates() {
        let r = sample();
        assert!(r.fingerprint_valid());
        assert_eq!(r.fingerprint, sample().fingerprint);
        assert_eq!(r.fingerprint.len(), 16);
    }

    #[test]
    fn fingerprint_detects_any_field_change() {
        let mut r = sample();
        r.metrics.scalar_insts += 1;
        assert!(!r.fingerprint_valid());
        let mut r = sample();
        r.seed ^= 1;
        assert!(!r.fingerprint_valid());
        let mut r = sample();
        r.ipc_per_mm2 += 1e-9;
        assert!(!r.fingerprint_valid());
    }

    #[test]
    fn jsonl_roundtrip_preserves_records_exactly() {
        let records = vec![sample(), { sample() }];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, records);
        assert!(back.iter().all(RunRecord::fingerprint_valid));
    }

    #[test]
    fn jsonl_skips_blank_lines_and_reports_bad_ones() {
        let text = format!("\n{}\n\n", to_jsonl(&[sample()]));
        assert_eq!(from_jsonl(&text).unwrap().len(), 1);
        let err = from_jsonl("{broken").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    /// Wall time differs every run; it must leak into neither the JSON
    /// nor the fingerprint, or golden checks and the cross-job byte
    /// comparison would break.
    #[test]
    fn perf_is_excluded_from_json_and_fingerprint() {
        let baseline = sample();
        let mut timed = sample();
        timed.perf = RunPerf::measure(1_000_000, 2_000_000_000);
        assert_eq!(timed.perf.sim_cycles_per_sec, 500_000.0);
        assert_eq!(
            to_jsonl(std::slice::from_ref(&timed)),
            to_jsonl(std::slice::from_ref(&baseline))
        );
        assert_eq!(timed.compute_fingerprint(), baseline.compute_fingerprint());
        assert!(timed.fingerprint_valid());
        assert!(!to_jsonl(&[timed]).contains("perf"));
    }

    /// Telemetry content differs with arming and run configuration; like
    /// `perf`, it must leak into neither the JSON nor the fingerprint nor
    /// equality, or golden checks with `--telemetry` would break.
    #[test]
    fn telemetry_is_excluded_from_json_and_fingerprint() {
        let baseline = sample();
        let mut traced = sample();
        traced.telemetry = Some(vec![TelemetryReport {
            label: "net".into(),
            radix: 6,
            cycles: 464,
            hist: Default::default(),
            links: Vec::new(),
            heatmap: vec![vec![0.0; 6]; 6],
            avg_occupancy: vec![0.0; 36],
            flight: Vec::new(),
            flight_dropped: 0,
        }]);
        assert_eq!(traced, baseline, "equality ignores telemetry");
        assert_eq!(
            to_jsonl(std::slice::from_ref(&traced)),
            to_jsonl(std::slice::from_ref(&baseline))
        );
        assert_eq!(traced.compute_fingerprint(), baseline.compute_fingerprint());
        assert!(traced.fingerprint_valid());
        assert!(!to_jsonl(&[traced.clone()]).contains("telemetry"));
        // And it does not survive a JSON round trip.
        let back = from_jsonl(&to_jsonl(&[traced])).unwrap();
        assert!(back[0].telemetry.is_none());
    }

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
