//! Scoped-thread worker pool over an indexed work list.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `jobs` scoped worker threads and returns the
/// results in index order.
///
/// Workers claim indices from a shared atomic cursor (idle workers steal
/// whatever work remains), so an expensive cell never serializes the
/// cheap ones behind it. Each result lands in its own pre-allocated slot,
/// which keeps the output order — and therefore everything downstream —
/// independent of the thread schedule. With `jobs <= 1` the work runs
/// inline on the caller's thread.
///
/// # Panics
///
/// Propagates any panic raised by `f` once all workers have joined.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot lock poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("slot lock poisoned").expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for jobs in [1, 2, 4, 8] {
            let out = run_indexed(33, jobs, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_work_list() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items() {
        let out = run_indexed(2, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 4, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        run_indexed(8, 2, |i| if i == 5 { panic!("deliberate") } else { i });
    }
}
