//! Per-cell seed derivation.
//!
//! Each sweep cell owns a private deterministic seed computed from the
//! grid seed and the cell's index only, so adding workers (or reordering
//! cell completion) can never change what any cell simulates.

/// Derives the seed of cell `index` from the grid seed (SplitMix64
/// finalizer over the pair).
///
/// The mix is bijective in `grid_seed` for a fixed index and avalanches
/// both inputs, so neighboring cells get uncorrelated streams even for
/// grid seeds that differ in one bit.
pub fn cell_seed(grid_seed: u64, index: u64) -> u64 {
    // Weyl-sequence step per index, then the SplitMix64 finalizer.
    let mut z = grid_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(cell_seed(0x7e0c, 0), cell_seed(0x7e0c, 0));
        assert_eq!(cell_seed(42, 17), cell_seed(42, 17));
    }

    #[test]
    fn different_indices_different_seeds() {
        let seeds: Vec<u64> = (0..256).map(|i| cell_seed(0x7e0c, i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "per-cell seeds must not collide");
    }

    #[test]
    fn different_grid_seeds_different_streams() {
        assert_ne!(cell_seed(1, 0), cell_seed(2, 0));
        assert_ne!(cell_seed(0, 5), cell_seed(u64::MAX, 5));
    }

    #[test]
    fn index_zero_is_mixed() {
        // The +1 Weyl step means index 0 does not pass grid_seed through
        // unmixed.
        assert_ne!(cell_seed(0x7e0c, 0), 0x7e0c);
    }
}
