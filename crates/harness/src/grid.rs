//! Sweep grids: the cross product of design points and workloads that a
//! sweep fans out over the worker pool.

use crate::rng::cell_seed;
use tenoc_core::presets::Preset;

/// How per-cell seeds are assigned.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SeedMode {
    /// Every cell derives a private seed from `(grid_seed, cell index)`
    /// via [`cell_seed`] — the sweep default.
    Derived(u64),
    /// Every cell uses the same fixed seed. The figure-regeneration
    /// benches use this with the system default seed so the engine
    /// reproduces exactly the numbers the old sequential loops printed.
    Fixed(u64),
}

/// One `(preset, workload, scale, seed)` unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// Position in the grid's row-major (preset-major) enumeration.
    pub index: usize,
    /// Design point.
    pub preset: Preset,
    /// Benchmark abbreviation (Table I).
    pub benchmark: String,
    /// Kernel-length scale factor.
    pub scale: f64,
    /// Workload seed for this cell.
    pub seed: u64,
    /// Mesh radix `k` passed to [`Preset::icnt`].
    pub mesh_k: usize,
    /// Arm the interconnect's telemetry for this cell's run. Telemetry
    /// never changes simulated outcomes, so records (and their
    /// fingerprints) are identical either way; the reports ride on the
    /// record's non-serialized side channel.
    pub telemetry: bool,
}

/// A sweep: `presets x benchmarks` at one scale, with a seed policy.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepGrid {
    /// Design points (outer/slow axis).
    pub presets: Vec<Preset>,
    /// Benchmark abbreviations (inner/fast axis).
    pub benchmarks: Vec<String>,
    /// Kernel-length scale factor applied to every cell.
    pub scale: f64,
    /// Seed policy.
    pub seed_mode: SeedMode,
    /// Mesh radix `k` passed to [`Preset::icnt`] (paper: 6).
    pub mesh_k: usize,
    /// Arm telemetry on every cell (see [`SweepCell::telemetry`]).
    pub telemetry: bool,
}

impl SweepGrid {
    /// A grid over `presets x benchmarks` with the system default seed
    /// derived per cell and the paper's 6x6 mesh.
    pub fn new(presets: Vec<Preset>, benchmarks: Vec<String>, scale: f64) -> Self {
        SweepGrid {
            presets,
            benchmarks,
            scale,
            seed_mode: SeedMode::Derived(0x7e0c),
            mesh_k: 6,
            telemetry: false,
        }
    }

    /// Replaces the seed policy.
    #[must_use]
    pub fn with_seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// Arms (or disarms) telemetry on every cell.
    #[must_use]
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.presets.len() * self.benchmarks.len()
    }

    /// `true` when either axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell at `index` (preset-major order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` or the benchmark axis is empty.
    pub fn cell(&self, index: usize) -> SweepCell {
        assert!(index < self.len(), "cell index {index} out of range");
        let preset = self.presets[index / self.benchmarks.len()];
        let benchmark = self.benchmarks[index % self.benchmarks.len()].clone();
        let seed = match self.seed_mode {
            SeedMode::Derived(grid_seed) => cell_seed(grid_seed, index as u64),
            SeedMode::Fixed(seed) => seed,
        };
        SweepCell {
            index,
            preset,
            benchmark,
            scale: self.scale,
            seed,
            mesh_k: self.mesh_k,
            telemetry: self.telemetry,
        }
    }

    /// All cells in index order.
    pub fn cells(&self) -> Vec<SweepCell> {
        (0..self.len()).map(|i| self.cell(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid::new(
            vec![Preset::BaselineTbDor, Preset::Perfect],
            vec!["HIS".into(), "MM".into(), "RD".into()],
            0.05,
        )
    }

    #[test]
    fn enumeration_is_preset_major() {
        let cells = grid().cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].preset, Preset::BaselineTbDor);
        assert_eq!(cells[0].benchmark, "HIS");
        assert_eq!(cells[2].benchmark, "RD");
        assert_eq!(cells[3].preset, Preset::Perfect);
        assert_eq!(cells[3].benchmark, "HIS");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn derived_seeds_differ_per_cell() {
        let cells = grid().cells();
        let seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), cells.len());
    }

    #[test]
    fn fixed_seed_is_uniform() {
        let cells = grid().with_seed_mode(SeedMode::Fixed(7)).cells();
        assert!(cells.iter().all(|c| c.seed == 7));
    }

    #[test]
    fn cells_are_stable_across_calls() {
        let g = grid();
        assert_eq!(g.cells(), g.cells());
    }
}
