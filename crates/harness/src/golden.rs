//! Golden-snapshot support: the canonical tiny grid whose fingerprints
//! are checked into `tests/golden/`, and the comparison logic the
//! regression tests and `tenoc sweep --check` share.

use crate::grid::{SeedMode, SweepGrid};
use crate::record::RunRecord;
use tenoc_core::Preset;

/// Kernel-length scale of the golden grid: small enough that the whole
/// sweep finishes in seconds, large enough that every cell moves real
/// traffic through the network.
pub const TINY_SCALE: f64 = 0.02;

/// Grid seed of the golden grid.
pub const TINY_GRID_SEED: u64 = 0x7e0c;

/// The canonical tiny golden grid: three design points that exercise the
/// mesh, the checkerboard router/routing pair and the combined
/// throughput-effective (double-network) configuration, each over the
/// three-class smoke suite (`HIS`/`MM`/`RD`), with derived per-cell seeds.
pub fn tiny_grid() -> SweepGrid {
    SweepGrid::new(
        vec![Preset::BaselineTbDor, Preset::CpCr4vc, Preset::ThroughputEffective],
        vec!["HIS".into(), "MM".into(), "RD".into()],
        TINY_SCALE,
    )
    .with_seed_mode(SeedMode::Derived(TINY_GRID_SEED))
}

/// Compares a fresh sweep against a golden snapshot by cell identity and
/// fingerprint.
///
/// # Errors
///
/// Returns one human-readable line per mismatch: records missing from
/// either side, identity mismatches at a cell index, and fingerprint
/// (i.e. measured-value) drift.
pub fn check_fingerprints(actual: &[RunRecord], golden: &[RunRecord]) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    if actual.len() != golden.len() {
        problems.push(format!(
            "record count: sweep has {}, golden has {}",
            actual.len(),
            golden.len()
        ));
    }
    for (a, g) in actual.iter().zip(golden) {
        if a.key() != g.key() {
            problems.push(format!("cell {}: identity {} != golden {}", a.cell, a.key(), g.key()));
            continue;
        }
        if !g.fingerprint_valid() {
            problems.push(format!(
                "cell {}: golden record is internally inconsistent (stored {}, implied {})",
                g.cell,
                g.fingerprint,
                g.compute_fingerprint()
            ));
        }
        if a.fingerprint != g.fingerprint {
            problems.push(format!(
                "cell {} ({}): fingerprint {} != golden {} — measured numbers drifted \
                 (IPC {} vs {}); re-bless only if the change is intended",
                a.cell,
                a.key(),
                a.fingerprint,
                g.fingerprint,
                a.metrics.ipc,
                g.metrics.ipc
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;

    #[test]
    fn tiny_grid_shape() {
        let g = tiny_grid();
        assert_eq!(g.len(), 9);
        assert_eq!(g.scale, TINY_SCALE);
    }

    #[test]
    fn self_comparison_is_clean() {
        let grid = SweepGrid::new(vec![Preset::BaselineTbDor], vec!["HIS".into()], 0.02);
        let records = run_sweep(&grid, 1);
        assert!(check_fingerprints(&records, &records).is_ok());
    }

    #[test]
    fn drift_is_reported() {
        let grid = SweepGrid::new(vec![Preset::BaselineTbDor], vec!["HIS".into()], 0.02);
        let records = run_sweep(&grid, 1);
        let mut tampered = records.clone();
        tampered[0].metrics.ipc *= 1.01;
        tampered[0].seal();
        let problems = check_fingerprints(&tampered, &records).unwrap_err();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("drifted"), "{}", problems[0]);
    }

    #[test]
    fn identity_and_count_mismatches_are_reported() {
        let grid =
            SweepGrid::new(vec![Preset::BaselineTbDor], vec!["HIS".into(), "MM".into()], 0.02);
        let records = run_sweep(&grid, 1);
        let problems = check_fingerprints(&records[..1], &records).unwrap_err();
        assert!(problems[0].contains("record count"));
        let mut renamed = records.clone();
        renamed[1].benchmark = "RD".into();
        renamed[1].seal();
        let problems = check_fingerprints(&renamed, &records).unwrap_err();
        assert!(problems[0].contains("identity"));
    }
}
