//! Cross-validation of the static load analyzer against the cycle-level
//! simulator.
//!
//! The static bounds in `tenoc_verify::load` are only trustworthy as a
//! free fidelity tier if the simulator can never beat them. This module
//! proves that empirically, per preset:
//!
//! * **Soundness of the throughput bound** — sweep open-loop injection
//!   rates; at every rate where the fabric *keeps up* with the offered
//!   many-to-few matrix (windowed ejection rate close to the offered flit
//!   rate), the sustained throughput must not exceed the static
//!   `accepted_bound`. Past saturation the delivered traffic mix shifts
//!   away from the matrix (flows that avoid the hot channels keep
//!   flowing), so raw ejection rates stop being matrix throughput — the
//!   keep-up filter is what makes the comparison meaningful.
//! * **Hottest-channel agreement** — the statically predicted
//!   highest-load channel set must contain the telemetry heatmap's
//!   hottest link observed in simulation.
//! * **Zero-load latency floor** — the static per-class zero-load
//!   latency must not exceed the measured mean latency at a very low
//!   injection rate.
//!
//! Measurements run on the preset's *unsliced* physical network (the
//! open-loop harness drives a single fabric), so the static side uses
//! the same single-network analysis.

use serde::{Deserialize, Serialize};
use tenoc_core::presets::Preset;
use tenoc_noc::openloop::{run_open_loop_on, OpenLoopConfig, TrafficPattern};
use tenoc_noc::Network;
use tenoc_verify::load::{analyze_load, TrafficMatrix};

/// Tuning knobs for one cross-validation run.
#[derive(Clone, Debug)]
pub struct XvalConfig {
    /// Mesh radix.
    pub k: usize,
    /// Injection rates swept for the throughput-bound check
    /// (request packets/cycle/compute-node).
    pub rates: Vec<f64>,
    /// Warm-up cycles per rate point.
    pub warmup: u64,
    /// Measurement window per rate point.
    pub measure: u64,
    /// Drain allowance per rate point.
    pub drain: u64,
    /// A rate point "keeps up" when its windowed ejection rate reaches
    /// this fraction of the offered flit rate (default 0.9).
    pub keepup_threshold: f64,
    /// Slack on the bound comparison (default 1.05: transient backlog
    /// drains and finite-window noise).
    pub bound_tolerance: f64,
    /// Injection rate for the zero-load latency measurement.
    pub low_rate: f64,
    /// Slack on the latency comparison (sampling noise at low rate).
    pub latency_tolerance: f64,
    /// Relative tie-window when matching the hottest channel (static
    /// loads tying the maximum within this fraction count as hottest).
    pub hottest_eps: f64,
}

impl Default for XvalConfig {
    fn default() -> Self {
        XvalConfig {
            k: 6,
            rates: vec![0.02, 0.04, 0.06, 0.08, 0.1, 0.15, 0.25, 0.4],
            warmup: 2_000,
            measure: 10_000,
            drain: 10_000,
            keepup_threshold: 0.9,
            bound_tolerance: 1.05,
            low_rate: 0.005,
            latency_tolerance: 1.05,
            hottest_eps: 0.02,
        }
    }
}

/// One swept rate point of the throughput-bound check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Offered injection rate (request packets/cycle/compute-node).
    pub rate: f64,
    /// Offered load converted to flits/cycle/node (the accepted unit).
    pub offered: f64,
    /// Windowed ejection rate measured (flits/cycle/node).
    pub ejection_rate: f64,
    /// Whether the fabric kept up with the offered matrix here.
    pub keeping_up: bool,
}

/// Cross-validation verdict for one preset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XvalResult {
    /// Preset label.
    pub preset: String,
    /// Static many-to-few accepted-throughput bound (flits/cycle/node).
    pub accepted_bound: f64,
    /// Highest sustained (keeping-up) measured throughput in the sweep.
    pub max_sustained: f64,
    /// `max_sustained <= accepted_bound * tolerance`.
    pub bound_sound: bool,
    /// Statically predicted hottest channel(s), `"node dir"`.
    pub predicted_hottest: Vec<String>,
    /// The telemetry-observed hottest link, `"node dir"`.
    pub observed_hottest: String,
    /// Whether the observed hottest link is among the predicted set.
    pub hottest_match: bool,
    /// Static zero-load request latency (mean over the matrix).
    pub static_request_latency: f64,
    /// Static zero-load reply latency (mean over the matrix).
    pub static_reply_latency: f64,
    /// Measured mean request latency at the low rate.
    pub measured_request_latency: f64,
    /// Measured mean reply latency at the low rate.
    pub measured_reply_latency: f64,
    /// Whether both static latencies sit at or below the measured means
    /// (within tolerance).
    pub latency_floor: bool,
    /// Every swept rate point, in sweep order.
    pub points: Vec<RatePoint>,
}

impl XvalResult {
    /// `true` when every cross-check passed.
    pub fn ok(&self) -> bool {
        self.bound_sound && self.hottest_match && self.latency_floor
    }
}

/// Cross-validates one physical network configuration against the
/// static analyzer.
///
/// # Panics
///
/// Panics if the configuration has no MC nodes (the open-loop traffic
/// needs them).
pub fn cross_validate(label: &str, net: &tenoc_noc::NetworkConfig, cfg: &XvalConfig) -> XvalResult {
    let report = analyze_load(net, TrafficMatrix::ManyToFew);
    // Per-unit-rate offered load in accepted units: the report's own
    // conversion factor between injection scale and flits/cycle/node.
    let offered_per_rate = if report.saturation_rate > 0.0 {
        report.accepted_bound / report.saturation_rate
    } else {
        0.0
    };

    let mut points = Vec::new();
    let mut max_sustained = 0.0_f64;
    let mut observed_hottest = String::from("-");
    let mut loads = Vec::new();
    for &rate in &cfg.rates {
        let mut ol = OpenLoopConfig::new(net.clone(), rate, TrafficPattern::UniformRandom);
        ol.warmup = cfg.warmup;
        ol.measure = cfg.measure;
        ol.drain = cfg.drain;
        let mut network = Network::new(net.clone());
        let r = run_open_loop_on(&ol, &mut network);
        let offered = rate * offered_per_rate;
        let keeping_up = offered > 0.0 && r.ejection_rate >= cfg.keepup_threshold * offered;
        if keeping_up {
            max_sustained = max_sustained.max(r.ejection_rate);
            // Read the heatmap off the highest rate that still delivers
            // the matrix: past saturation the delivered mix shifts away
            // from it (hot flows clamp first), so saturated heatmaps no
            // longer reflect the matrix the prediction is about. Rates
            // ascend, so the last keeping-up point wins.
            network.link_loads_into(&mut loads);
            if let Some((node, dir, _)) =
                loads.iter().reduce(|best, c| if c.2 > best.2 { c } else { best })
            {
                observed_hottest = format!("{node} {}", tenoc_noc::telemetry::dir_label(*dir));
            }
        }
        points.push(RatePoint { rate, offered, ejection_rate: r.ejection_rate, keeping_up });
    }

    let predicted_hottest: Vec<String> = report
        .hottest_channels(cfg.hottest_eps)
        .iter()
        .map(|c| format!("{} {}", c.node, c.dir))
        .collect();
    let hottest_match = predicted_hottest.contains(&observed_hottest);

    let mut lo = OpenLoopConfig::new(net.clone(), cfg.low_rate, TrafficPattern::UniformRandom);
    lo.warmup = cfg.warmup;
    lo.measure = cfg.measure;
    lo.drain = cfg.drain;
    let low = tenoc_noc::openloop::run_open_loop(&lo);
    let zl = |class: &str| {
        report.zero_load.iter().find(|z| z.class == class).map(|z| z.mean).unwrap_or(0.0)
    };
    let static_request_latency = zl("request");
    let static_reply_latency = zl("reply");
    let latency_floor = static_request_latency <= low.avg_request_latency * cfg.latency_tolerance
        && static_reply_latency <= low.avg_reply_latency * cfg.latency_tolerance;

    XvalResult {
        preset: label.to_string(),
        accepted_bound: report.accepted_bound,
        max_sustained,
        bound_sound: max_sustained <= report.accepted_bound * cfg.bound_tolerance,
        predicted_hottest,
        observed_hottest,
        hottest_match,
        static_request_latency,
        static_reply_latency,
        measured_request_latency: low.avg_request_latency,
        measured_reply_latency: low.avg_reply_latency,
        latency_floor,
        points,
    }
}

/// Cross-validates every physical named preset (ideal networks have
/// nothing to bound). Presets sharing one unsliced physical network are
/// deduplicated — the open-loop harness drives single fabrics, so
/// distinct double-network port variants measure identically.
pub fn cross_validate_presets(cfg: &XvalConfig) -> Vec<XvalResult> {
    let mut seen: Vec<tenoc_noc::NetworkConfig> = Vec::new();
    let mut out = Vec::new();
    for p in Preset::NAMED {
        let icnt = p.icnt(cfg.k);
        if matches!(
            icnt,
            tenoc_core::system::IcntConfig::Perfect(_)
                | tenoc_core::system::IcntConfig::BwLimited(_, _)
        ) {
            continue;
        }
        let net = icnt.net().clone();
        if seen.contains(&net) {
            continue;
        }
        seen.push(net.clone());
        out.push(cross_validate(&p.label(), &net, cfg));
    }
    out
}
