//! The engine's determinism contract: the same grid produces bit-identical
//! records at any worker count, and per-cell seeds depend only on
//! `(grid_seed, cell index)`.

use tenoc_core::Preset;
use tenoc_harness::{cell_seed, engine, to_jsonl, SeedMode, SweepGrid};

fn small_grid() -> SweepGrid {
    SweepGrid::new(
        vec![Preset::BaselineTbDor, Preset::CpCr4vc],
        vec!["HIS".into(), "RD".into()],
        0.02,
    )
    .with_seed_mode(SeedMode::Derived(0xfeed))
}

#[test]
fn records_are_identical_at_jobs_1_and_jobs_4() {
    let grid = small_grid();
    let seq = engine::run_sweep(&grid, 1);
    let par = engine::run_sweep(&grid, 4);
    assert_eq!(seq, par, "jobs=4 must reproduce jobs=1 bit-for-bit");
    // Byte-identical on the wire too, fingerprints included.
    assert_eq!(to_jsonl(&seq), to_jsonl(&par));
}

#[test]
fn repeated_sweeps_are_identical() {
    let grid = small_grid();
    assert_eq!(engine::run_sweep(&grid, 2), engine::run_sweep(&grid, 3));
}

#[test]
fn one_cell_rerun_in_isolation_matches_the_sweep() {
    // A cell's result depends only on its own SweepCell, not on which
    // other cells ran around it.
    let grid = small_grid();
    let all = engine::run_grid(&grid, 4);
    let lone = engine::run_cell(&grid.cell(3));
    assert_eq!(all[3].metrics, lone.metrics);
    assert_eq!(all[3].cell, lone.cell);
}

#[test]
fn cell_seeds_depend_only_on_grid_seed_and_index() {
    let a = small_grid();
    let b = small_grid();
    for (ca, cb) in a.cells().iter().zip(b.cells().iter()) {
        assert_eq!(ca.seed, cb.seed);
        assert_eq!(ca.seed, cell_seed(0xfeed, ca.index as u64));
    }
    // A different grid seed moves every cell's seed.
    let other = small_grid().with_seed_mode(SeedMode::Derived(0xbeef));
    for (ca, co) in a.cells().iter().zip(other.cells().iter()) {
        assert_ne!(ca.seed, co.seed);
    }
}

#[test]
fn derived_seeds_change_measured_results() {
    // The seed actually reaches the workload: two grids differing only in
    // grid seed must disagree on at least one cell's cycle count.
    // Completion is polled every 512 core cycles, so `core_cycles` absorbs
    // small perturbations; the flit-hop count sees every address-stream
    // change directly.
    let a = engine::run_sweep(&small_grid(), 2);
    let b = engine::run_sweep(&small_grid().with_seed_mode(SeedMode::Derived(0xbeef)), 2);
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.metrics.flit_hops != y.metrics.flit_hops),
        "grid seed must influence the simulated traffic"
    );
}
