//! The batched scheduler's determinism contract: grouping same-shape
//! cells onto the arena engine must not change a single byte of the
//! sweep's output — records, fingerprints and JSONL agree with the
//! unbatched per-cell sweep at every `jobs` and `batch` combination.

use tenoc_core::Preset;
use tenoc_harness::{engine, to_jsonl, SeedMode, SweepGrid};

fn grid() -> SweepGrid {
    SweepGrid::new(
        vec![Preset::BaselineTbDor, Preset::ThroughputEffective],
        vec!["HIS".into(), "RD".into()],
        0.02,
    )
    .with_seed_mode(SeedMode::Derived(0x7e0c))
}

#[test]
fn batched_sweep_matches_unbatched_at_all_widths() {
    let reference = engine::run_sweep(&grid(), 1);
    assert!(reference.iter().all(|r| r.fingerprint_valid()));
    for batch in [2, 4, 8] {
        let batched = engine::run_sweep_batched(&grid(), 1, batch);
        assert_eq!(reference, batched, "batch={batch} diverged from the unbatched sweep");
        assert_eq!(
            to_jsonl(&reference),
            to_jsonl(&batched),
            "batch={batch} JSONL (fingerprints included) must be byte-identical"
        );
    }
}

#[test]
fn batched_sweep_is_identical_at_jobs_1_and_jobs_4() {
    let seq = engine::run_sweep_batched(&grid(), 1, 4);
    let par = engine::run_sweep_batched(&grid(), 4, 4);
    assert_eq!(seq, par, "jobs=4 must reproduce jobs=1 bit-for-bit under batching");
    assert_eq!(to_jsonl(&seq), to_jsonl(&par));
}
