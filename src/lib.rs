//! # tenoc — throughput-effective on-chip networks for manycore accelerators
//!
//! Facade crate re-exporting the whole workspace: a full reproduction of
//! *Throughput-Effective On-Chip Networks for Manycore Accelerators*
//! (Bakhoda, Kim, Aamodt, MICRO 2010) as a family of Rust libraries.
//!
//! * [`noc`] — cycle-level NoC simulator (mesh, checkerboard half-routers,
//!   checkerboard routing, multi-port MC routers, double networks).
//! * [`dram`] — GDDR3 timing model with an FR-FCFS memory controller.
//! * [`cache`] — set-associative caches, MSHRs, warp access coalescing.
//! * [`simt`] — SIMT shader-core timing model with synthetic kernels.
//! * [`workloads`] — the 31-benchmark synthetic suite mirroring Table I.
//! * [`core`] — the closed-loop accelerator system simulator, configuration
//!   presets for every paper design point, the ORION-calibrated area model
//!   and the throughput-effectiveness analysis.
//! * [`harness`] — the parallel deterministic experiment engine: sweep
//!   grids over a worker pool, JSON-lines [`harness::RunRecord`]s with
//!   stable fingerprints, and golden-snapshot regression checks.
//!
//! * [`verify`] — the static analyzer: configuration legality proofs
//!   (CDG acyclicity, reachability, VC isolation) and the load/latency
//!   bound engine behind `tenoc audit`.
//! * [`serve`] — the long-running sweep service behind `tenoc serve`:
//!   JSON lines over TCP, a content-addressed persistent result cache,
//!   in-flight dedup and tenant-fair deadline-RR scheduling, streaming
//!   byte-identical records to batch `tenoc sweep`.
//! * [`tune`] — the throughput-effectiveness autotuner behind
//!   `tenoc tune`: a staged-fidelity search (verify, static rank,
//!   open-loop probes, closed-loop successive halving) of the IPC/mm²
//!   Pareto frontier over the interconnect design space.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tenoc_cache as cache;
pub use tenoc_core as core;
pub use tenoc_dram as dram;
pub use tenoc_harness as harness;
pub use tenoc_noc as noc;
pub use tenoc_serve as serve;
pub use tenoc_simt as simt;
pub use tenoc_tune as tune;
pub use tenoc_verify as verify;
pub use tenoc_workloads as workloads;
