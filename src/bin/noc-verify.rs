//! `noc-verify` — static verification of the shipped network presets.
//!
//! Runs the tenoc-verify channel-dependency-graph analysis over every
//! named configuration in `tenoc_core::presets` (or one selected with
//! `--preset`), printing a PASS/FAIL line per preset and the full report
//! for failures, or a machine-readable JSON report with `--json`.
//!
//! Exit codes are distinct so the check can gate CI and scripts can tell
//! outcomes apart: **0** all verified presets pass, **1** at least one
//! preset has a violation, **2** usage error (unknown flag or preset).
//!
//! `--negative NAME` inverts the exercise: it builds a known-broken
//! configuration (e.g. a torus without dateline VCs) and reports the
//! prover's concrete deadlock witness. The violation is the expected
//! outcome, so the run still exits 1 — CI asserts the exit code *and*
//! that the JSON carries the witness.
//!
//! ```text
//! noc-verify [--all-presets] [--preset LABEL] [--negative NAME] [--k N]
//!            [--verbose] [--json]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::process::ExitCode;
use tenoc_core::presets::Preset;
use tenoc_core::system::IcntConfig;
use tenoc_verify::{analyze, analyze_double, VerifyReport};

const USAGE: &str = "usage: noc-verify [--all-presets] [--preset LABEL] [--negative NAME] \
[--k N] [--verbose] [--json]
  --all-presets    verify every named preset (default)
  --preset LABEL   verify only the preset with this label (e.g. CP-CR-4VC)
  --negative NAME  demonstrate a known-broken config's deadlock witness
                   (NAME: torus-no-dateline); exits 1 with the witness
  --k N            mesh radix (default 6, the paper's scale)
  --verbose        print full reports for passing presets too
  --json           emit one machine-readable JSON report on stdout
exit codes: 0 all pass, 1 violation(s), 2 usage error";

fn main() -> ExitCode {
    let mut k: usize = 6;
    let mut verbose = false;
    let mut json = false;
    let mut preset_filter: Option<String> = None;
    let mut negative: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all-presets" => preset_filter = None,
            "--preset" => match args.next() {
                Some(label) => preset_filter = Some(label),
                None => return usage_error("--preset needs a label"),
            },
            "--negative" => match args.next() {
                Some(name) => negative = Some(name),
                None => return usage_error("--negative needs a witness name"),
            },
            "--k" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => k = n,
                _ => return usage_error("--k needs an integer radix >= 2"),
            },
            "--verbose" | "-v" => verbose = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(name) = negative {
        return run_negative(&name, k, json);
    }

    let mut matched = false;
    let mut any_violation = false;
    let mut entries = Vec::new();
    for preset in Preset::NAMED {
        let label = preset.label();
        if let Some(ref want) = preset_filter {
            if !label.eq_ignore_ascii_case(want) {
                continue;
            }
        }
        matched = true;
        let report = checked_report(preset, k);
        if let Some(ref r) = report {
            any_violation |= !r.is_clean();
        }
        if json {
            entries.push(json_entry(&label, report.as_ref()));
            continue;
        }
        match report {
            None => println!("{label:<24} SKIP  (no routed fabric to verify)"),
            Some(report) if report.is_clean() => {
                println!(
                    "{label:<24} PASS  ({} pairs, {} routes, CDG {}v/{}e)",
                    report.stats.pairs,
                    report.stats.plans_traced,
                    report.stats.cdg_vertices,
                    report.stats.cdg_edges
                );
                if verbose {
                    print!("{report}");
                }
            }
            Some(report) => {
                any_violation = true;
                println!("{label:<24} FAIL");
                print!("{report}");
            }
        }
    }

    if !matched {
        let labels: Vec<String> = Preset::NAMED.iter().map(|p| p.label()).collect();
        eprintln!(
            "no preset labeled {:?}; known presets: {}",
            preset_filter.unwrap_or_default(),
            labels.join(", ")
        );
        return ExitCode::from(2);
    }
    if json {
        let top = serde::json::Value::Object(vec![
            ("k".to_string(), (k as u64).to_value()),
            ("ok".to_string(), (!any_violation).to_value()),
            ("presets".to_string(), serde::json::Value::Array(entries)),
        ]);
        println!("{}", top.to_json_pretty());
    }
    if any_violation {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Builds the named known-broken configuration, runs the prover and
/// reports its concrete deadlock witness. Exits 1 when the expected
/// violation is found (the JSON report has `ok: false` and carries the
/// witness strings); a *clean* report means the prover lost the witness
/// and exits 2 so CI distinguishes the regression from a usage error.
fn run_negative(name: &str, k: usize, json: bool) -> ExitCode {
    use tenoc_noc::{NetworkConfig, VcLayout};
    let cfg = match name {
        "torus-no-dateline" => {
            let mut c = NetworkConfig::baseline_torus(k);
            c.vcs = VcLayout::new(4, 2, false);
            c
        }
        other => {
            return usage_error(&format!(
                "unknown negative witness {other:?}; known: torus-no-dateline"
            ))
        }
    };
    let report = analyze(&cfg);
    if json {
        let top = serde::json::Value::Object(vec![
            ("k".to_string(), (k as u64).to_value()),
            ("ok".to_string(), report.is_clean().to_value()),
            ("negative".to_string(), name.to_value()),
            (
                "presets".to_string(),
                serde::json::Value::Array(vec![json_entry(name, Some(&report))]),
            ),
        ]);
        println!("{}", top.to_json_pretty());
    } else if report.is_clean() {
        println!("{name:<24} CLEAN (expected a deadlock witness!)");
    } else {
        println!("{name:<24} WITNESS FOUND (expected)");
        print!("{report}");
    }
    if report.is_clean() {
        eprintln!("noc-verify: negative witness {name:?} verified clean — prover regression");
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    }
}

/// One preset's row of the `--json` report: status plus, for verified
/// fabrics, the violation strings and the prover's work accounting.
fn json_entry(label: &str, report: Option<&VerifyReport>) -> serde::json::Value {
    use serde::json::Value;
    let mut fields = vec![("preset".to_string(), label.to_value())];
    match report {
        None => fields.push(("status".to_string(), "skip".to_value())),
        Some(r) => {
            fields.push((
                "status".to_string(),
                if r.is_clean() { "pass" } else { "fail" }.to_value(),
            ));
            fields.push(("subject".to_string(), r.subject.to_value()));
            fields.push((
                "violations".to_string(),
                Value::Array(r.violations().map(|f| f.to_string().to_value()).collect()),
            ));
            fields.push((
                "stats".to_string(),
                Value::Object(vec![
                    ("pairs".to_string(), r.stats.pairs.to_value()),
                    ("unroutable_pairs".to_string(), r.stats.unroutable_pairs.to_value()),
                    ("plans_traced".to_string(), r.stats.plans_traced.to_value()),
                    ("cdg_vertices".to_string(), r.stats.cdg_vertices.to_value()),
                    ("cdg_edges".to_string(), r.stats.cdg_edges.to_value()),
                ]),
            ));
        }
    }
    Value::Object(fields)
}

/// The verification report for one preset, or `None` for idealized
/// interconnects that have no routed fabric.
fn checked_report(preset: Preset, k: usize) -> Option<VerifyReport> {
    match preset.icnt(k) {
        IcntConfig::Mesh(c) => Some(analyze(&c)),
        IcntConfig::Double(c) => Some(analyze_double(&c)),
        IcntConfig::Perfect(_) | IcntConfig::BwLimited(..) => None,
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("noc-verify: {msg}\n{USAGE}");
    ExitCode::from(2)
}
