//! `noc-verify` — static verification of the shipped network presets.
//!
//! Runs the tenoc-verify channel-dependency-graph analysis over every
//! named configuration in `tenoc_core::presets` (or one selected with
//! `--preset`), printing a PASS/FAIL line per preset and the full report
//! for failures. Exits nonzero if any preset has a violation, so the
//! check can gate CI.
//!
//! ```text
//! noc-verify [--all-presets] [--preset LABEL] [--k N] [--verbose]
//! ```

use std::process::ExitCode;
use tenoc_core::presets::Preset;
use tenoc_core::system::IcntConfig;
use tenoc_verify::{analyze, analyze_double, VerifyReport};

const USAGE: &str = "usage: noc-verify [--all-presets] [--preset LABEL] [--k N] [--verbose]
  --all-presets   verify every named preset (default)
  --preset LABEL  verify only the preset with this label (e.g. CP-CR-4VC)
  --k N           mesh radix (default 6, the paper's scale)
  --verbose       print full reports for passing presets too";

fn main() -> ExitCode {
    let mut k: usize = 6;
    let mut verbose = false;
    let mut preset_filter: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all-presets" => preset_filter = None,
            "--preset" => match args.next() {
                Some(label) => preset_filter = Some(label),
                None => return usage_error("--preset needs a label"),
            },
            "--k" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => k = n,
                _ => return usage_error("--k needs an integer radix >= 2"),
            },
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let mut matched = false;
    let mut any_violation = false;
    for preset in Preset::NAMED {
        let label = preset.label();
        if let Some(ref want) = preset_filter {
            if !label.eq_ignore_ascii_case(want) {
                continue;
            }
        }
        matched = true;
        match checked_report(preset, k) {
            None => println!("{label:<24} SKIP  (no routed fabric to verify)"),
            Some(report) if report.is_clean() => {
                println!(
                    "{label:<24} PASS  ({} pairs, {} routes, CDG {}v/{}e)",
                    report.stats.pairs,
                    report.stats.plans_traced,
                    report.stats.cdg_vertices,
                    report.stats.cdg_edges
                );
                if verbose {
                    print!("{report}");
                }
            }
            Some(report) => {
                any_violation = true;
                println!("{label:<24} FAIL");
                print!("{report}");
            }
        }
    }

    if !matched {
        let labels: Vec<String> = Preset::NAMED.iter().map(|p| p.label()).collect();
        eprintln!(
            "no preset labeled {:?}; known presets: {}",
            preset_filter.unwrap_or_default(),
            labels.join(", ")
        );
        return ExitCode::from(2);
    }
    if any_violation {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The verification report for one preset, or `None` for idealized
/// interconnects that have no routed fabric.
fn checked_report(preset: Preset, k: usize) -> Option<VerifyReport> {
    match preset.icnt(k) {
        IcntConfig::Mesh(c) => Some(analyze(&c)),
        IcntConfig::Double(c) => Some(analyze_double(&c)),
        IcntConfig::Perfect(_) | IcntConfig::BwLimited(..) => None,
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("noc-verify: {msg}\n{USAGE}");
    ExitCode::from(2)
}
