//! `tenoc` — command-line front end for the simulator.
//!
//! ```text
//! tenoc run --benchmark RD --preset thr-eff [--scale 0.2] [--json]
//! tenoc suite --preset baseline [--scale 0.12] [--json]
//! tenoc sweep [--presets baseline,thr-eff|all] [--benchmarks HIS,MM|smoke|all]
//!             [--scale 0.12] [--seed N] [--jobs N] [--batch B] [--out FILE]
//!             [--telemetry] [--tiny] [--golden FILE --check|--bless]
//! tenoc trace --preset thr-eff [--benchmark RD] [--scale F] [--out DIR]
//!             [--flight-cap N] [--node N] [--class request|reply]
//! tenoc audit [--k N] [--out FILE] [--json] [--golden FILE --check|--bless]
//! tenoc tune [--k N] [--tiny] [--jobs N] [--batch B] [--scale F] [--seed N]
//!            [--cache DIR] [--out FILE] [--json] [--golden FILE --check|--bless]
//! tenoc serve [--addr HOST:PORT] [--cache DIR] [--jobs N] [--batch B]
//! tenoc submit [--addr HOST:PORT] [--tenant NAME] [--tiny]
//!              [--presets A,B] [--benchmarks X,Y] [--scale F] [--seed N]
//!              [--out FILE] [--require-cached] | --stats [--out FILE]
//! tenoc openloop --preset cp-cr-2p [--hotspot] [--rates 0.01..0.12]
//! tenoc engine-bench [--preset NAME] [--k N] [--scale F] [--batch N] [--out FILE]
//! tenoc area
//! tenoc classify [--scale 0.12]
//! tenoc list
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::process::ExitCode;
use tenoc::core::area::{throughput_effectiveness, AreaModel};
use tenoc::core::experiments::{run_benchmark, run_suite, run_with_icnt, scale_from_env};
use tenoc::core::presets::Preset;
use tenoc::core::SweepReport;
use tenoc::noc::openloop::{run_open_loop, OpenLoopConfig, TrafficPattern};
use tenoc::workloads::{by_name, full_name, suite};

fn preset_by_flag(s: &str) -> Option<Preset> {
    // One flag vocabulary everywhere: the CLI, the sweep service wire
    // protocol and the library all resolve through `Preset::from_flag`.
    Preset::from_flag(s)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                "true".to_owned()
            };
            out.insert(key.to_owned(), value);
        }
        i += 1;
    }
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tenoc <command> [flags]\n\
         commands:\n\
           run       --benchmark <ABBR> --preset <NAME> [--scale F] [--json]\n\
           suite     --preset <NAME> [--scale F] [--json]\n\
           sweep     [--presets A,B|all] [--benchmarks X,Y|smoke|all] [--scale F]\n\
                     [--seed N] [--jobs N] [--batch B] [--out FILE] [--telemetry]\n\
                     [--tiny] [--golden FILE --check|--bless]\n\
           trace     --preset <NAME> [--benchmark <ABBR>] [--scale F] [--out DIR]\n\
                     [--flight-cap N] [--node N] [--class request|reply]\n\
                     (telemetry artifacts: latency histograms, link heatmap,\n\
                      flight recorder -> trace.json + flight.jsonl)\n\
           audit     [--k N] [--out FILE] [--json] [--golden FILE --check|--bless]\n\
                     (static config-space audit: verify, bound, price, rank)\n\
           tune      [--k N] [--tiny] [--jobs N] [--batch B] [--scale F]\n\
                     [--seed N] [--cache DIR] [--out FILE] [--json]\n\
                     [--golden FILE --check|--bless]\n\
                     (staged-fidelity search of the IPC/mm2 Pareto frontier:\n\
                      verify -> static rank -> open-loop probes -> closed-loop\n\
                      successive halving; --cache memoizes cells)\n\
           serve     [--addr HOST:PORT] [--cache DIR] [--jobs N] [--batch B]\n\
                     (long-running sweep service: content-addressed cache,\n\
                      in-flight dedup, tenant-fair scheduling; default addr\n\
                      127.0.0.1:32268)\n\
           submit    [--addr HOST:PORT] [--tenant NAME] [--tiny]\n\
                     [--presets A,B] [--benchmarks X,Y] [--scale F] [--seed N]\n\
                     [--out FILE] [--require-cached]\n\
                     (submit a grid to a running service; --stats fetches the\n\
                      service counters instead)\n\
           openloop  --preset <NAME> [--hotspot] [--rate F]\n\
           engine-bench [--preset NAME] [--k N] [--scale F] [--batch N]\n\
                     [--out FILE] (simulator speed probe; default thr-eff at\n\
                      k=6; one radix feeds both engine paths)\n\
           area      (Table VI summary)\n\
           classify  [--scale F] (measured LL/LH/HH classes)\n\
           list      (benchmarks and presets)\n\
         presets: baseline 2x-bw 1-cycle cp-dor cp-dor-4vc cp-cr double thr-eff\n\
                  cp-cr-2p torus cmesh perfect"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let flags = parse_flags(&args[1..]);
    let scale =
        flags.get("scale").and_then(|s| s.parse::<f64>().ok()).unwrap_or_else(scale_from_env);

    match cmd.as_str() {
        "run" => {
            let Some(bench) = flags.get("benchmark") else {
                eprintln!("run: missing --benchmark");
                return usage();
            };
            let Some(spec) = by_name(bench) else {
                eprintln!("unknown benchmark {bench}; see `tenoc list`");
                return ExitCode::FAILURE;
            };
            let Some(preset) = flags.get("preset").and_then(|p| preset_by_flag(p)) else {
                eprintln!("run: missing or unknown --preset");
                return usage();
            };
            let m = run_benchmark(preset, &spec, scale);
            if flags.contains_key("json") {
                println!("{}", serde_json_line(&spec.name, preset, &m));
            } else {
                println!(
                    "{} on {}: IPC {:.1}, net latency {:.1} cyc, MC stall {:.0}%, DRAM eff {:.0}%",
                    spec.name,
                    preset.label(),
                    m.ipc,
                    m.avg_net_latency,
                    m.mc_stall_fraction * 100.0,
                    m.dram_efficiency * 100.0
                );
            }
        }
        "suite" => {
            let Some(preset) = flags.get("preset").and_then(|p| preset_by_flag(p)) else {
                eprintln!("suite: missing or unknown --preset");
                return usage();
            };
            let results = run_suite(preset, scale);
            let report = SweepReport::new(&preset.label(), scale, &results);
            if flags.contains_key("json") {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.to_markdown());
                println!("\nHM IPC: {:.1}", report.hm_ipc());
            }
        }
        "sweep" => return cmd_sweep(&flags, scale),
        "serve" => return cmd_serve(&flags),
        "submit" => return cmd_submit(&flags),
        "audit" => return cmd_audit(&flags),
        "tune" => return cmd_tune(&flags),
        "trace" => return cmd_trace(&flags, scale),
        "engine-bench" => return cmd_engine_bench(&flags),
        "openloop" => {
            let Some(preset) = flags.get("preset").and_then(|p| preset_by_flag(p)) else {
                eprintln!("openloop: missing or unknown --preset");
                return usage();
            };
            let pattern = if flags.contains_key("hotspot") {
                TrafficPattern::Hotspot { hot: 0, fraction: 0.2 }
            } else {
                TrafficPattern::UniformRandom
            };
            let net = match preset.icnt(6) {
                tenoc::core::system::IcntConfig::Mesh(c) => c,
                tenoc::core::system::IcntConfig::Double(c) => c,
                _ => {
                    eprintln!("openloop: pick a physical-network preset");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(rate) = flags.get("rate").and_then(|r| r.parse::<f64>().ok()) {
                let r = run_open_loop(&OpenLoopConfig::new(net, rate, pattern));
                println!(
                    "rate {rate}: latency {:.1} cyc, delivered {:.1}%{}",
                    r.avg_latency,
                    r.delivered_fraction * 100.0,
                    if r.saturated() { " (saturated)" } else { "" }
                );
            } else {
                println!("{:>6} {:>10}", "rate", "latency");
                for i in 1..=12 {
                    let rate = i as f64 * 0.01;
                    let r = run_open_loop(&OpenLoopConfig::new(net.clone(), rate, pattern));
                    if r.saturated() {
                        println!("{rate:>6.2} {:>10}", "saturated");
                        break;
                    }
                    println!("{rate:>6.2} {:>10.1}", r.avg_latency);
                }
            }
        }
        "area" => {
            println!("{:>22} {:>12} {:>10} {:>12}", "design", "NoC [mm^2]", "chip", "IPC/mm^2@200");
            for preset in Preset::NAMED {
                let a = AreaModel::chip_area(&preset.icnt(6));
                println!(
                    "{:>22} {:>12.1} {:>10.1} {:>12.4}",
                    preset.label(),
                    a.noc(),
                    a.total(),
                    throughput_effectiveness(200.0, &a)
                );
            }
        }
        "classify" => {
            let base = run_suite(Preset::BaselineTbDor, scale);
            let perfect = run_suite(Preset::Perfect, scale);
            println!("{:>6} {:>8} {:>9} {:>12}", "bench", "class", "speedup", "B/cyc/node");
            for (b, p) in base.iter().zip(&perfect) {
                println!(
                    "{:>6} {:>8} {:>+8.1}% {:>12.2}",
                    b.name,
                    b.class.to_string(),
                    (p.metrics.ipc / b.metrics.ipc - 1.0) * 100.0,
                    p.metrics.accepted_flits_per_node * 16.0
                );
            }
        }
        "list" => {
            println!("benchmarks (Table I):");
            for spec in suite() {
                println!(
                    "  {:>4} [{}] {}",
                    spec.name,
                    spec.class,
                    full_name(&spec.name).unwrap_or("")
                );
            }
            println!("\npresets: baseline, 2x-bw, 1-cycle, cp-dor, cp-dor-4vc, cp-cr,");
            println!("         double, thr-eff, cp-cr-2p, torus, cmesh, perfect");
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

fn serde_json_line(name: &str, preset: Preset, m: &tenoc::core::RunMetrics) -> String {
    format!(
        "{{\"benchmark\":\"{name}\",\"preset\":\"{}\",\"metrics\":{}}}",
        preset.label(),
        serde_json::to_string(m).expect("metrics are plain data")
    )
}

/// `tenoc trace`: run one benchmark on one preset with the telemetry
/// layer armed and emit the artifacts — `trace.json` (metrics, per-class
/// latency histograms, per-link utilization with a mesh heatmap, mean
/// buffer occupancies) and `flight.jsonl` (one flight-recorder event per
/// line, tagged with its network slice).
fn cmd_trace(flags: &HashMap<String, String>, scale: f64) -> ExitCode {
    use serde::Serialize;
    use tenoc::core::experiments::run_traced;
    use tenoc::noc::{ArmSpec, PacketClass, TelemetryConfig};

    let Some(preset) = flags.get("preset").and_then(|p| preset_by_flag(p)) else {
        eprintln!("trace: missing or unknown --preset");
        return usage();
    };
    let bench = flags.get("benchmark").map(String::as_str).unwrap_or("RD");
    let Some(spec) = by_name(bench) else {
        eprintln!("unknown benchmark {bench}; see `tenoc list`");
        return ExitCode::FAILURE;
    };
    let class = match flags.get("class").map(String::as_str) {
        None => None,
        Some("request") => Some(PacketClass::Request),
        Some("reply") => Some(PacketClass::Reply),
        Some(other) => {
            eprintln!("trace: --class must be request or reply, got {other}");
            return ExitCode::FAILURE;
        }
    };
    let tcfg = TelemetryConfig {
        flight_capacity: flags
            .get("flight-cap")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(TelemetryConfig::default().flight_capacity),
        arm: ArmSpec { node: flags.get("node").and_then(|v| v.parse::<usize>().ok()), class },
    };

    eprintln!("trace: {} on {} at scale {scale}", spec.name, preset.label());
    let (metrics, reports) = run_traced(preset, &spec, scale, tcfg);
    if reports.is_empty() {
        eprintln!(
            "trace: preset {} has no physical network to observe (ideal model)",
            preset.label()
        );
        return ExitCode::FAILURE;
    }

    let dir = flags.get("out").map(String::as_str).unwrap_or("trace-out");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace: cannot create {dir}: {e}");
        return ExitCode::FAILURE;
    }

    // trace.json: everything except the flight events (those go to the
    // JSON-lines file, which is friendlier to streaming consumers).
    let trace = serde::json::Value::Object(vec![
        ("preset".to_string(), preset.label().to_value()),
        ("benchmark".to_string(), spec.name.to_value()),
        ("scale".to_string(), scale.to_value()),
        ("metrics".to_string(), metrics.to_value()),
        ("reports".to_string(), reports.to_value()),
    ]);
    let trace_path = format!("{dir}/trace.json");
    if let Err(e) = std::fs::write(&trace_path, trace.to_json_pretty()) {
        eprintln!("trace: cannot write {trace_path}: {e}");
        return ExitCode::FAILURE;
    }

    // flight.jsonl: every slice's ring-buffer sample, one event per line,
    // tagged with the slice label.
    let mut flight = String::new();
    let mut events = 0usize;
    for r in &reports {
        for ev in &r.flight {
            let mut obj = vec![("net".to_string(), r.label.to_value())];
            if let serde::json::Value::Object(fields) = ev.to_value() {
                obj.extend(fields);
            }
            flight.push_str(&serde::json::Value::Object(obj).to_json_compact());
            flight.push('\n');
            events += 1;
        }
    }
    let flight_path = format!("{dir}/flight.jsonl");
    if let Err(e) = std::fs::write(&flight_path, &flight) {
        eprintln!("trace: cannot write {flight_path}: {e}");
        return ExitCode::FAILURE;
    }

    for r in &reports {
        let req = r.hist.network[0].count();
        let rep = r.hist.network[1].count();
        eprintln!(
            "trace: [{}] {} cycles, {} links, {} flight events ({} dropped), hist req/rep {}/{}",
            r.label,
            r.cycles,
            r.links.len(),
            r.flight.len(),
            r.flight_dropped,
            req,
            rep
        );
    }
    eprintln!("trace: wrote {trace_path} and {flight_path} ({events} events)");
    ExitCode::SUCCESS
}

/// Today's UTC date as `YYYY-MM-DD` (Hinnant's civil-from-days; no
/// calendar dependency).
fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe as i64 + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Pulls the entry list out of an existing trajectory file's
/// `"history":[...]` array, so each run appends rather than overwrites.
/// Entries are flat objects (no nested arrays), so the array ends at the
/// first `]` after the key.
fn prior_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Some(start) = text.find("\"history\":[") else { return Vec::new() };
    let body = &text[start + "\"history\":[".len()..];
    let Some(end) = body.find(']') else { return Vec::new() };
    let body = &body[..end];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in body.chars() {
        match ch {
            '{' => {
                depth += 1;
                current.push(ch);
            }
            '}' => {
                depth -= 1;
                current.push(ch);
                if depth == 0 {
                    entries.push(std::mem::take(&mut current));
                }
            }
            _ if depth > 0 => current.push(ch),
            _ => {}
        }
    }
    entries
}

/// `tenoc engine-bench`: measure how fast the simulator itself runs —
/// simulated interconnect cycles per wall-clock second — on one design
/// point (default: the paper's combined throughput-effective design,
/// fig. 20; select another with `--preset`) driving the RD benchmark.
/// With `--batch N`, additionally runs N seed-varied copies of the probe
/// in lockstep on the arena engine and reports the aggregate rate. Each
/// run appends a dated entry to the output file's `history` array, so
/// `BENCH_engine.json` carries the perf trajectory across PRs.
fn cmd_engine_bench(flags: &HashMap<String, String>) -> ExitCode {
    // Pre-refactor engine speed on the identical probe (thr-eff / RD at
    // scale 1.0, one job): 187646 simulated icnt cycles in 23.26 s of
    // wall time, measured at the commit immediately before the
    // active-set cycle kernel landed. The `speedup` field compares the
    // current build against this figure.
    const BASELINE_CYCLES_PER_SEC: f64 = 8067.0;

    let scale = flags.get("scale").and_then(|s| s.parse::<f64>().ok()).unwrap_or(1.0);
    let batch = flags.get("batch").and_then(|b| b.parse::<usize>().ok()).unwrap_or(1).max(1);
    let k = flags.get("k").and_then(|k| k.parse::<usize>().ok()).unwrap_or(6);
    let Some(spec) = by_name("RD") else {
        eprintln!("engine-bench: RD benchmark missing");
        return ExitCode::FAILURE;
    };
    let preset = match flags.get("preset") {
        None => Preset::ThroughputEffective,
        Some(name) => match preset_by_flag(name) {
            Some(p) => p,
            None => {
                eprintln!("engine-bench: unknown preset {name}");
                return ExitCode::FAILURE;
            }
        },
    };
    // One radix feeds both the single-cell probe and the batched path,
    // so `--k` can never silently bench two different networks.
    let icnt = preset.icnt(k);
    eprintln!(
        "engine-bench: {} on {} (k={k}) at scale {scale}, batch {batch}",
        spec.name,
        preset.label()
    );

    // Single-cell rate on the per-cell oracle kernel (the B=1 reference).
    let start = std::time::Instant::now();
    let m = run_with_icnt(icnt.clone(), &spec, scale);
    let wall_nanos = start.elapsed().as_nanos() as u64;
    let perf = tenoc::harness::RunPerf::measure(m.icnt_cycles, wall_nanos);
    let speedup = perf.sim_cycles_per_sec / BASELINE_CYCLES_PER_SEC;
    eprintln!(
        "engine-bench: single cell {} cycles in {:.2} s -> {:.0} sim cycles/s ({speedup:.2}x baseline)",
        m.icnt_cycles,
        wall_nanos as f64 / 1e9,
        perf.sim_cycles_per_sec
    );

    // Batched aggregate: N seed-varied probes in lockstep on the arena
    // engine, one thread. Aggregate rate = total simulated cycles / wall.
    let (batch_cycles, batch_wall_nanos) = if batch >= 2 {
        let scaled = spec.scaled(scale);
        let mut systems: Vec<tenoc::core::System> = (0..batch)
            .map(|i| {
                let mut cfg = tenoc::core::SystemConfig::with_icnt(icnt.clone());
                cfg.seed = tenoc::harness::cell_seed(0x7e0c, i as u64);
                cfg.engine = tenoc::core::EngineKind::Arena;
                tenoc::core::System::new(cfg, &scaled)
            })
            .collect();
        let start = std::time::Instant::now();
        let results = tenoc::core::run_lockstep(&mut systems);
        let wall = start.elapsed().as_nanos() as u64;
        let total: u64 = results.iter().map(|r| r.icnt_cycles).sum();
        (total, wall)
    } else {
        (m.icnt_cycles, wall_nanos)
    };
    let aggregate_rate = batch_cycles as f64 / (batch_wall_nanos as f64 / 1e9);
    let aggregate_speedup = aggregate_rate / perf.sim_cycles_per_sec;
    if batch >= 2 {
        eprintln!(
            "engine-bench: batch {batch} aggregate {} cycles in {:.2} s -> {:.0} sim cycles/s \
             ({aggregate_speedup:.2}x the single-cell rate)",
            batch_cycles,
            batch_wall_nanos as f64 / 1e9,
            aggregate_rate
        );
    }

    let path = flags.get("out").map(String::as_str).unwrap_or("BENCH_engine.json");
    let entry = format!(
        "{{\"date\":\"{}\",\"preset\":\"{}\",\"scale\":{},\"sim_cycles\":{},\"wall_nanos\":{},\
         \"sim_cycles_per_sec\":{:.1},\"batch\":{},\"batch_sim_cycles\":{},\
         \"batch_wall_nanos\":{},\"aggregate_cycles_per_sec\":{:.1},\
         \"aggregate_speedup_over_single\":{:.2}}}",
        utc_date_string(),
        preset.label(),
        scale,
        m.icnt_cycles,
        wall_nanos,
        perf.sim_cycles_per_sec,
        batch,
        batch_cycles,
        batch_wall_nanos,
        aggregate_rate,
        aggregate_speedup
    );
    let mut history = prior_history(path);
    history.push(entry.clone());
    let json = format!(
        "{{\"probe\":{{\"preset\":\"{}\",\"benchmark\":\"{}\",\"scale\":{}}},\
         \"sim_cycles\":{},\"wall_nanos\":{},\"sim_cycles_per_sec\":{:.1},\
         \"baseline_sim_cycles_per_sec\":{:.1},\"speedup\":{:.2},\
         \"batch\":{},\"aggregate_cycles_per_sec\":{:.1},\
         \"aggregate_speedup_over_single\":{:.2},\
         \"history\":[{}]}}\n",
        preset.label(),
        spec.name,
        scale,
        m.icnt_cycles,
        wall_nanos,
        perf.sim_cycles_per_sec,
        BASELINE_CYCLES_PER_SEC,
        speedup,
        batch,
        aggregate_rate,
        aggregate_speedup,
        history.join(",")
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("engine-bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("engine-bench: wrote {path} ({} history entries)", history.len());
    ExitCode::SUCCESS
}

/// Default service address: port 0x7e0c, the workspace's seed constant.
const SERVE_ADDR: &str = "127.0.0.1:32268";

/// `tenoc serve`: run the sweep service until killed. Results are
/// journaled to the cache directory as they complete, so a killed server
/// restarted on the same `--cache` resumes without re-simulating.
fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let mut cfg = tenoc::serve::ServerConfig::new(
        flags.get("addr").map(String::as_str).unwrap_or(SERVE_ADDR),
        flags.get("cache").map(String::as_str).unwrap_or("sweep-cache"),
    );
    if let Some(jobs) = flags.get("jobs").and_then(|j| j.parse::<usize>().ok()).filter(|&j| j >= 1)
    {
        cfg.workers = jobs;
    }
    cfg.batch = flags.get("batch").and_then(|b| b.parse::<usize>().ok()).unwrap_or(8).max(1);
    let handle = match tenoc::serve::start(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: cannot start on {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serve: listening on {} ({} workers, batch {}, cache {})",
        handle.addr(),
        cfg.workers,
        cfg.batch,
        cfg.cache_dir.display()
    );
    // Serve until the process is killed; the journal makes that safe.
    loop {
        std::thread::park();
    }
}

/// `tenoc submit`: send one sweep to a running service, reassemble the
/// stream in cell order (byte-identical to `tenoc sweep` output for the
/// same grid) and report the request's cache accounting. With `--stats`,
/// fetch the service counters instead.
fn cmd_submit(flags: &HashMap<String, String>) -> ExitCode {
    use std::time::Duration;
    let addr = flags.get("addr").map(String::as_str).unwrap_or(SERVE_ADDR);

    let write_out = |flags: &HashMap<String, String>, text: &str, what: &str| -> bool {
        if let Some(path) = flags.get("out") {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("submit: cannot write {path}: {e}");
                return false;
            }
            eprintln!("submit: wrote {what} to {path}");
        } else {
            print!("{text}");
        }
        true
    };

    if flags.contains_key("stats") {
        match tenoc::serve::fetch_stats(addr) {
            Ok(stats) => {
                let mut text = stats.to_json_compact();
                text.push('\n');
                if write_out(flags, &text, "service stats") {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("submit: stats from {addr} failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut req = tenoc::serve::SweepRequest {
            tenant: flags.get("tenant").cloned().unwrap_or_else(|| "cli".to_string()),
            tiny: flags.contains_key("tiny"),
            ..Default::default()
        };
        if let Some(list) = flags.get("presets") {
            req.presets = list.split(',').map(str::to_string).collect();
        } else if !req.tiny {
            req.presets = vec!["baseline".to_string()];
        }
        if let Some(list) = flags.get("benchmarks") {
            req.benchmarks = list.split(',').map(str::to_string).collect();
        } else if !req.tiny {
            req.benchmarks =
                tenoc::workloads::smoke_suite().iter().map(|s| s.name.clone()).collect();
        }
        if let Some(s) = flags.get("scale").and_then(|s| s.parse::<f64>().ok()) {
            req.scale = s;
        }
        if let Some(s) = flags.get("seed").and_then(|s| s.parse::<u64>().ok()) {
            req.seed = s;
        }

        // The server may have been spawned a moment ago (CI backgrounds
        // it); retry the connect briefly instead of failing on a race.
        let mut stream =
            match tenoc::serve::connect_with_retry(addr, 40, Duration::from_millis(250)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("submit: cannot reach service at {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
        let outcome = match tenoc::serve::submit_on(&mut stream, &req) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("submit: {e}");
                return ExitCode::FAILURE;
            }
        };
        if outcome.aborted {
            eprintln!("submit: server aborted the stream after {} records", outcome.lines.len());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "submit: {} cells ({} simulated, {} cache hits, {} dedup hits)",
            outcome.planned, outcome.simulated, outcome.cache_hits, outcome.dedup_hits
        );
        if !write_out(flags, &outcome.jsonl(), "records") {
            return ExitCode::FAILURE;
        }
        if flags.contains_key("require-cached") && outcome.simulated != 0 {
            eprintln!(
                "submit: --require-cached violated: {} cells simulated instead of hitting cache",
                outcome.simulated
            );
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    }
}

/// `tenoc audit`: statically verify, bound, price and rank the config
/// space (every named preset plus known-illegal variants) without
/// simulating a cycle, emitting deterministic JSON suitable for golden
/// snapshotting.
fn cmd_audit(flags: &HashMap<String, String>) -> ExitCode {
    let k = flags.get("k").and_then(|v| v.parse::<usize>().ok()).unwrap_or(6);
    if k < 2 {
        eprintln!("audit: --k must be at least 2");
        return ExitCode::FAILURE;
    }
    let report = tenoc::core::audit_grid(k);
    let json = report.to_json();

    if flags.contains_key("json") {
        println!("{json}");
    } else {
        println!(
            "{:>22} {:>8} {:>9} {:>10} {:>10}  bottleneck (many-to-few)",
            "design", "legal", "score", "bound", "chip[mm2]"
        );
        for e in &report.entries {
            let (score, bound, bneck) = match e.matrices.iter().find(|m| m.matrix == "many-to-few")
            {
                Some(m) => (
                    format!("{:.4}", e.te_score),
                    format!("{:.4}", m.accepted_bound),
                    m.bottleneck.clone(),
                ),
                None if e.ideal => ("-".into(), "-".into(), "(ideal network)".into()),
                None => ("-".into(), "-".into(), e.violations.join("; ")),
            };
            println!(
                "{:>22} {:>8} {:>9} {:>10} {:>10.1}  {}",
                e.name,
                if e.legal { "yes" } else { "NO" },
                score,
                bound,
                e.area_mm2,
                bneck
            );
        }
    }

    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("audit: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("audit: wrote {path}");
    }

    if let Some(golden_path) = flags.get("golden") {
        if flags.contains_key("bless") {
            if let Err(e) = std::fs::write(golden_path, &json) {
                eprintln!("audit: cannot bless {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("audit: blessed golden snapshot {golden_path}");
        } else if flags.contains_key("check") {
            let golden = match std::fs::read_to_string(golden_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("audit: cannot read golden {golden_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if golden.trim() != json.trim() {
                eprintln!(
                    "audit: report differs from golden {golden_path}; \
                     re-run with --bless to accept the new numbers"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("audit: report matches the golden snapshot");
        } else {
            eprintln!("audit: --golden needs --check or --bless");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `tenoc tune`: staged-fidelity search of the IPC/mm² Pareto frontier.
fn cmd_tune(flags: &HashMap<String, String>) -> ExitCode {
    use tenoc::tune::{run_tune, TuneOptions, TuneSpec};

    let k = flags.get("k").and_then(|v| v.parse::<usize>().ok()).unwrap_or(6);
    if k < 2 {
        eprintln!("tune: --k must be at least 2");
        return ExitCode::FAILURE;
    }
    let mut spec =
        if flags.contains_key("tiny") { TuneSpec::tiny() } else { TuneSpec::default_at(k) };
    // The spec's own scale/seed are the deterministic defaults; explicit
    // flags override them (and change every content address with them).
    if let Some(s) = flags.get("scale").and_then(|v| v.parse::<f64>().ok()) {
        spec.scale = s;
    }
    if let Some(s) = flags.get("seed").and_then(|v| v.parse::<u64>().ok()) {
        spec.seed = s;
    }
    let opts = TuneOptions {
        jobs: flags
            .get("jobs")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(tenoc::harness::jobs_from_env),
        batch: flags.get("batch").and_then(|v| v.parse::<usize>().ok()).unwrap_or(8),
        cache_dir: flags.get("cache").map(std::path::PathBuf::from),
    };
    let (report, stats) = match run_tune(&spec, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tune: result cache error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    // Execution counters go to stderr only: the report must stay
    // byte-identical whatever the cache already held.
    eprintln!(
        "tune: {} enumerated, {} legal, {} probed, {} halved; {} closed-loop cells \
         ({} from cache), {} finalists, {} on the frontier",
        report.counts.enumerated,
        report.counts.legal,
        report.counts.stage1_promoted,
        report.counts.stage2_promoted,
        stats.stage3_cells,
        stats.stage3_cache_hits,
        report.counts.finalists,
        report.counts.frontier
    );

    if flags.contains_key("json") {
        println!("{json}");
    } else {
        println!(
            "{:>28} {:>10} {:>8} {:>10} {:>9}  aliases",
            "frontier point", "chip[mm2]", "HM-IPC", "IPC/mm2", "te-score"
        );
        for p in &report.frontier {
            println!(
                "{:>28} {:>10.1} {:>8.1} {:>10.3} {:>9.4}  {}",
                p.name,
                p.area_mm2,
                p.hm_ipc,
                p.ipc_per_mm2,
                p.te_score,
                if p.aliases.is_empty() { "-".to_string() } else { p.aliases.join(", ") }
            );
        }
        println!("\nnamed design points:");
        for n in &report.named_points {
            println!(
                "{:>22} -> {:<32} {:>9}{}",
                n.preset,
                n.candidate,
                n.stage_reached,
                if n.on_frontier { "  [frontier]" } else { "" }
            );
        }
    }

    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("tune: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("tune: wrote {path}");
    }

    if let Some(golden_path) = flags.get("golden") {
        if flags.contains_key("bless") {
            if let Err(e) = std::fs::write(golden_path, &json) {
                eprintln!("tune: cannot bless {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("tune: blessed golden snapshot {golden_path}");
        } else if flags.contains_key("check") {
            let golden = match std::fs::read_to_string(golden_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tune: cannot read golden {golden_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if golden.trim() != json.trim() {
                eprintln!(
                    "tune: report differs from golden {golden_path}; \
                     re-run with --bless to accept the new frontier"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("tune: report matches the golden snapshot");
        } else {
            eprintln!("tune: --golden needs --check or --bless");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `tenoc sweep`: fan a (preset x benchmark) grid over the worker pool and
/// emit JSON-lines records, optionally checking or refreshing a golden
/// snapshot.
fn cmd_sweep(flags: &HashMap<String, String>, scale: f64) -> ExitCode {
    use tenoc::harness::{check_fingerprints, engine, from_jsonl, to_jsonl, SeedMode, SweepGrid};

    let grid = if flags.contains_key("tiny") {
        tenoc::harness::tiny_grid()
    } else {
        let presets = match flags.get("presets").map(String::as_str) {
            None => vec![Preset::BaselineTbDor],
            Some("all") => Preset::NAMED.to_vec(),
            Some(list) => {
                let mut out = Vec::new();
                for name in list.split(',') {
                    let Some(p) = preset_by_flag(name) else {
                        eprintln!("sweep: unknown preset {name}");
                        return usage();
                    };
                    out.push(p);
                }
                out
            }
        };
        let benchmarks: Vec<String> = match flags.get("benchmarks").map(String::as_str) {
            None | Some("smoke") => {
                tenoc::workloads::smoke_suite().iter().map(|s| s.name.clone()).collect()
            }
            Some("all") => suite().iter().map(|s| s.name.clone()).collect(),
            Some(list) => {
                let mut out = Vec::new();
                for name in list.split(',') {
                    if by_name(name).is_none() {
                        eprintln!("sweep: unknown benchmark {name}; see `tenoc list`");
                        return ExitCode::FAILURE;
                    }
                    out.push(name.to_owned());
                }
                out
            }
        };
        let seed = flags.get("seed").and_then(|s| s.parse::<u64>().ok()).unwrap_or(0x7e0c);
        SweepGrid::new(presets, benchmarks, scale).with_seed_mode(SeedMode::Derived(seed))
    };
    // Telemetry rides the records' non-serialized side channel, so armed
    // and unarmed sweeps emit byte-identical JSONL.
    let grid = grid.with_telemetry(flags.contains_key("telemetry"));

    let jobs = flags
        .get("jobs")
        .and_then(|j| j.parse::<usize>().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(tenoc::harness::jobs_from_env);
    let batch = flags.get("batch").and_then(|b| b.parse::<usize>().ok()).unwrap_or(1).max(1);
    eprintln!(
        "sweep: {} cells ({} presets x {} benchmarks) at scale {}, {} jobs, batch {}",
        grid.len(),
        grid.presets.len(),
        grid.benchmarks.len(),
        grid.scale,
        jobs,
        batch
    );
    let records = if batch >= 2 {
        engine::run_sweep_batched(&grid, jobs, batch)
    } else {
        engine::run_sweep(&grid, jobs)
    };
    let jsonl = to_jsonl(&records);

    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep: wrote {} records to {path}", records.len());
    } else {
        print!("{jsonl}");
    }

    if let Some(golden_path) = flags.get("golden") {
        if flags.contains_key("bless") {
            if let Err(e) = std::fs::write(golden_path, &jsonl) {
                eprintln!("sweep: cannot bless {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("sweep: blessed golden snapshot {golden_path}");
        } else if flags.contains_key("check") {
            let golden_text = match std::fs::read_to_string(golden_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sweep: cannot read golden {golden_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let golden = match from_jsonl(&golden_text) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("sweep: malformed golden {golden_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(problems) = check_fingerprints(&records, &golden) {
                eprintln!("sweep: golden mismatch against {golden_path}:");
                for p in &problems {
                    eprintln!("  {p}");
                }
                eprintln!("re-run with --bless to accept the new numbers");
                return ExitCode::FAILURE;
            }
            eprintln!("sweep: {} records match the golden snapshot", records.len());
        } else {
            eprintln!("sweep: --golden needs --check or --bless");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
