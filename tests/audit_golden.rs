//! Tier-1 golden-snapshot regression test for the static config-space
//! audit: `tenoc audit` is pure arithmetic over the routing function and
//! the area model, so its JSON report must be byte-stable.
//!
//! When an intentional change moves the numbers, refresh the snapshot
//! with `cargo run --release --bin tenoc -- audit --golden
//! tests/golden/audit.json --bless` and review the diff like any other
//! code change.

use tenoc::core::audit_grid;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/audit.json")
}

#[test]
fn audit_report_matches_checked_in_snapshot() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden snapshot present");
    let current = audit_grid(6).to_json();
    assert!(
        golden.trim() == current.trim(),
        "audit report drifted from tests/golden/audit.json; if intended, re-bless with \
         `cargo run --release --bin tenoc -- audit --golden tests/golden/audit.json --bless`"
    );
}

#[test]
fn audit_ranks_legal_physical_designs_first() {
    let report = audit_grid(6);
    let ranked: Vec<&str> = report.ranked().map(|e| e.name.as_str()).collect();
    assert!(!ranked.is_empty());
    // The paper's headline ordering: the throughput-effective family
    // (channel-sliced checkerboard with multi-port MCs) beats every
    // baseline-mesh variant per mm².
    let score_of =
        |name: &str| report.entries.iter().find(|e| e.name == name).map(|e| e.te_score).unwrap();
    assert!(score_of("CP-CR-2P(single)") > score_of("CP-CR-4VC"));
    assert!(score_of("CP-CR-4VC") > score_of("CP-DOR-2VC"));
    assert!(score_of("CP-DOR-2VC") > score_of("TB-DOR"));
    assert!(score_of("TB-DOR") > score_of("2x-TB-DOR"));
    // Illegal variants are rejected with witnesses, never ranked.
    for e in &report.entries {
        if !e.legal {
            assert!(!e.violations.is_empty(), "{}: illegal without witness", e.name);
            assert!(e.matrices.is_empty(), "{}: illegal config was load-analyzed", e.name);
        }
    }
    assert!(report.entries.iter().filter(|e| !e.legal).count() >= 2);
}
