//! Cross-crate integration tests asserting the *qualitative shapes* of the
//! paper's headline results on short kernels: who wins, and in what order.
//!
//! Every run here is pinned: `SCALE` is a compile-time constant (the env
//! override `TENOC_SCALE` is deliberately not consulted) and the seed is
//! the `SystemConfig` default, guarded by [`shapes_run_at_the_pinned_seed`].
//! The thresholds below are tolerance bands calibrated at exactly this
//! (seed, scale) point — change either and the bands must be re-derived.

use tenoc::core::area::{throughput_effectiveness, AreaModel};
use tenoc::core::experiments::{run_benchmark, run_with_icnt};
use tenoc::core::presets::Preset;
use tenoc::core::system::SystemConfig;
use tenoc::workloads::by_name;

const SCALE: f64 = 0.08;

/// The seed every `run_benchmark` call in this file implicitly uses.
const PINNED_SEED: u64 = 0x7e0c;

#[test]
fn shapes_run_at_the_pinned_seed() {
    // All tolerance bands in this file were calibrated at this default
    // seed. If this assertion fires, either restore the default or
    // re-derive every band in this file at the new seed.
    let cfg = SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6));
    assert_eq!(
        cfg.seed, PINNED_SEED,
        "default SystemConfig seed changed; re-calibrate the shape-test tolerance bands"
    );
}

#[test]
fn perfect_network_helps_hh_much_more_than_ll() {
    let ll = by_name("AES").unwrap();
    let hh = by_name("KM").unwrap();
    let sp = |spec| {
        let b = run_benchmark(Preset::BaselineTbDor, spec, SCALE);
        let p = run_benchmark(Preset::Perfect, spec, SCALE);
        p.ipc / b.ipc
    };
    let s_ll = sp(&ll);
    let s_hh = sp(&hh);
    assert!(s_ll < 1.3, "LL perfect-NoC speedup must be small: {s_ll:.2}");
    assert!(s_hh > 1.5, "HH perfect-NoC speedup must be large: {s_hh:.2}");
}

#[test]
fn bandwidth_beats_latency_for_hh() {
    // Figure 9's conclusion: doubling channel width helps far more than
    // 1-cycle routers.
    let spec = by_name("SCP").unwrap();
    let base = run_benchmark(Preset::BaselineTbDor, &spec, SCALE);
    let bw = run_benchmark(Preset::TbDor2xBw, &spec, SCALE);
    let lat = run_benchmark(Preset::TbDor1Cycle, &spec, SCALE);
    let s_bw = bw.ipc / base.ipc;
    let s_lat = lat.ipc / base.ipc;
    assert!(s_bw > s_lat, "2x bandwidth ({s_bw:.2}) must beat 1-cycle routers ({s_lat:.2})");
    assert!(s_bw > 1.1, "2x bandwidth must clearly help an HH benchmark");
}

#[test]
fn checkerboard_placement_helps_heavy_traffic() {
    let spec = by_name("CFD").unwrap();
    let tb = run_benchmark(Preset::BaselineTbDor, &spec, SCALE);
    let cp = run_benchmark(Preset::CpDor2vc, &spec, SCALE);
    assert!(
        cp.ipc >= tb.ipc * 0.98,
        "staggered placement must not hurt heavy traffic: {} vs {}",
        cp.ipc,
        tb.ipc
    );
}

#[test]
fn checkerboard_routing_loses_little_vs_dor_at_equal_vcs() {
    // Figure 17: half-routers + CR vs full routers + DOR, both 4 VCs.
    let spec = by_name("MM").unwrap();
    let dor = run_benchmark(Preset::CpDor4vc, &spec, SCALE);
    let cr = run_benchmark(Preset::CpCr4vc, &spec, SCALE);
    let rel = cr.ipc / dor.ipc;
    assert!(rel > 0.85, "CR must be within ~15% of DOR at equal VCs, got {rel:.2}");
}

#[test]
fn multiport_injection_recovers_double_network_terminal_bandwidth() {
    // Figure 19: extra injection ports help the double network on HH.
    let spec = by_name("RD").unwrap();
    let double = run_benchmark(Preset::DoubleCpCr, &spec, SCALE);
    let multi = run_benchmark(Preset::DoubleCpCr2InjPorts, &spec, SCALE);
    assert!(
        multi.ipc > double.ipc * 0.95,
        "2 injection ports must not hurt an HH benchmark: {} vs {}",
        multi.ipc,
        double.ipc
    );
    // The paper's strongest observable: extra ports cut the time the MC
    // is blocked on reply injection (38.5% reduction in the paper).
    assert!(
        multi.mc_stall_fraction < double.mc_stall_fraction * 0.9,
        "extra injection ports must reduce MC blocking: {} vs {}",
        multi.mc_stall_fraction,
        double.mc_stall_fraction
    );
}

#[test]
fn throughput_effective_design_improves_ipc_per_area() {
    // The headline: the combined design improves IPC/mm² whenever raw IPC
    // roughly matches the baseline, because the NoC shrinks. Use a light
    // benchmark whose IPC is network-insensitive.
    let spec = by_name("HIS").unwrap();
    let base = run_benchmark(Preset::BaselineTbDor, &spec, SCALE);
    let te = run_benchmark(Preset::ThroughputEffective, &spec, SCALE);
    let a_base = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
    let a_te = AreaModel::chip_area(&Preset::ThroughputEffective.icnt(6));
    let te_eff = throughput_effectiveness(te.ipc, &a_te);
    let base_eff = throughput_effectiveness(base.ipc, &a_base);
    assert!(
        te_eff > base_eff,
        "throughput-effectiveness must improve: {te_eff:.4} vs {base_eff:.4}"
    );
}

#[test]
fn mc_stalls_track_traffic_intensity() {
    // Figure 11's shape: HH benchmarks block the MCs' reply path far more
    // than LL benchmarks.
    let ll = run_benchmark(Preset::BaselineTbDor, &by_name("BIN").unwrap(), SCALE);
    let hh = run_benchmark(Preset::BaselineTbDor, &by_name("LIB").unwrap(), SCALE);
    assert!(ll.mc_stall_fraction < 0.2, "LL stall {:.2}", ll.mc_stall_fraction);
    assert!(hh.mc_stall_fraction > 0.4, "HH stall {:.2}", hh.mc_stall_fraction);
}

#[test]
fn bandwidth_limit_study_is_monotone() {
    // Figure 6's shape: more aggregate bandwidth never hurts, and the
    // curve flattens near the DRAM-balance point.
    let spec = by_name("KM").unwrap();
    let lo = run_benchmark(Preset::BwLimited(0.2), &spec, SCALE);
    let mid = run_benchmark(Preset::BwLimited(0.8), &spec, SCALE);
    let hi = run_benchmark(Preset::BwLimited(1.6), &spec, SCALE);
    let perfect = run_benchmark(Preset::Perfect, &spec, SCALE);
    assert!(lo.ipc <= mid.ipc * 1.01);
    assert!(mid.ipc <= hi.ipc * 1.01);
    // A finite cap can slightly beat the perfect network by accident of
    // DRAM scheduling, so allow a small tolerance.
    assert!(hi.ipc <= perfect.ipc * 1.05);
    assert!(
        lo.ipc < mid.ipc * 0.7,
        "an HH benchmark must be clearly bandwidth-starved at 0.2x: {} vs {}",
        lo.ipc,
        mid.ipc
    );
    assert!(
        hi.ipc > perfect.ipc * 0.8,
        "1.6x DRAM bandwidth must be close to infinite: {} vs {}",
        hi.ipc,
        perfect.ipc
    );
}

#[test]
fn runs_are_deterministic_across_processes_and_configs() {
    let spec = by_name("HIS").unwrap();
    let a = run_benchmark(Preset::CpCr4vc, &spec, SCALE);
    let b = run_benchmark(Preset::CpCr4vc, &spec, SCALE);
    assert_eq!(a.core_cycles, b.core_cycles);
    assert_eq!(a.scalar_insts, b.scalar_insts);
    assert_eq!(a.ipc, b.ipc);
}

#[test]
fn custom_icnt_configs_run_end_to_end() {
    use tenoc::core::system::IcntConfig;
    use tenoc::noc::NetworkConfig;
    let spec = by_name("HIS").unwrap();
    // An 8x8 mesh with 8 MCs: the stack is not hard-coded to 6x6.
    let m = run_with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(8)), &spec, 0.05);
    assert!(m.completed);
    let m = run_with_icnt(IcntConfig::Mesh(NetworkConfig::checkerboard_mesh(8)), &spec, 0.05);
    assert!(m.completed);
}
