//! Integration tests of the open-loop harness (Figure 21 shapes).
//!
//! Runs are pinned: window lengths are fixed in [`quick`] and the traffic
//! seed is pinned to `PINNED_SEED` explicitly, so the saturation sweeps
//! and latency bands below are deterministic across processes and hosts.
//! The comparisons use tolerance bands (`* 1.05`, `>=` rather than `>`)
//! where two configs can legitimately tie at these short windows.

use tenoc::noc::openloop::{run_open_loop, OpenLoopConfig, TrafficPattern};
use tenoc::noc::{Mesh, NetworkConfig, Placement};

/// Traffic RNG seed for every open-loop run in this file (the upstream
/// default, restated here so a default change cannot silently move the
/// calibrated bands).
const PINNED_SEED: u64 = 0x0f21;

fn quick(
    cfg: NetworkConfig,
    rate: f64,
    pattern: TrafficPattern,
) -> tenoc::noc::openloop::OpenLoopResult {
    let mut ol = OpenLoopConfig::new(cfg, rate, pattern);
    ol.warmup = 1_500;
    ol.measure = 4_000;
    ol.drain = 8_000;
    ol.seed = PINNED_SEED;
    run_open_loop(&ol)
}

#[test]
fn openloop_runs_are_deterministic() {
    let tb = NetworkConfig::baseline_mesh(6);
    let a = quick(tb.clone(), 0.02, TrafficPattern::UniformRandom);
    let b = quick(tb, 0.02, TrafficPattern::UniformRandom);
    assert_eq!(a.avg_latency.to_bits(), b.avg_latency.to_bits());
    assert_eq!(a.accepted.to_bits(), b.accepted.to_bits());
}

/// Saturation throughput of a config under uniform many-to-few traffic:
/// the highest rate of the sweep that is not saturated.
fn saturation_rate(cfg: &NetworkConfig, pattern: TrafficPattern) -> f64 {
    let mut last_ok = 0.0;
    for i in 1..=14 {
        let rate = i as f64 * 0.01;
        let r = quick(cfg.clone(), rate, pattern);
        if r.saturated() {
            break;
        }
        last_ok = rate;
    }
    last_ok
}

#[test]
fn two_x_bandwidth_raises_saturation() {
    let tb = NetworkConfig::baseline_mesh(6);
    let tb2 = NetworkConfig { channel_bytes: 32, ..tb.clone() };
    let s1 = saturation_rate(&tb, TrafficPattern::UniformRandom);
    let s2 = saturation_rate(&tb2, TrafficPattern::UniformRandom);
    assert!(s2 > s1, "2x channels must raise saturation: {s2} vs {s1}");
}

#[test]
fn multiport_raises_saturation_over_plain_checkerboard() {
    let cp = NetworkConfig::checkerboard_mesh(6);
    let mut cp2p = cp.clone();
    cp2p.mc_inject_ports = 2;
    let s1 = saturation_rate(&cp, TrafficPattern::UniformRandom);
    let s2 = saturation_rate(&cp2p, TrafficPattern::UniformRandom);
    assert!(s2 >= s1, "2 injection ports must not lower saturation throughput: {s2} vs {s1}");
}

#[test]
fn hotspot_saturates_no_later_than_uniform() {
    let tb = NetworkConfig::baseline_mesh(6);
    let u = saturation_rate(&tb, TrafficPattern::UniformRandom);
    let h = saturation_rate(&tb, TrafficPattern::Hotspot { hot: 0, fraction: 0.2 });
    assert!(h <= u, "hotspot traffic must saturate no later: {h} vs {u}");
}

#[test]
fn staggered_placement_lowers_low_load_latency() {
    // CP placement shortens average core-MC distance vs top-bottom.
    let tb = NetworkConfig::baseline_mesh(6);
    let cp = {
        let mesh = Mesh::all_full(6);
        let mc_nodes = Mesh::checkerboard(6).mcs(Placement::Checkerboard, 8);
        NetworkConfig { mesh, mc_nodes, ..tb.clone() }
    };
    let l_tb = quick(tb, 0.01, TrafficPattern::UniformRandom).avg_latency;
    let l_cp = quick(cp, 0.01, TrafficPattern::UniformRandom).avg_latency;
    assert!(
        l_cp < l_tb * 1.05,
        "staggered MCs must not lengthen low-load latency: {l_cp:.1} vs {l_tb:.1}"
    );
}

#[test]
fn latency_is_monotone_in_offered_load_below_saturation() {
    let tb = NetworkConfig::baseline_mesh(6);
    let mut prev = 0.0;
    for rate in [0.005, 0.02, 0.04] {
        let r = quick(tb.clone(), rate, TrafficPattern::UniformRandom);
        assert!(!r.saturated(), "rate {rate} should be below saturation");
        assert!(r.avg_latency >= prev * 0.95, "latency roughly monotone");
        prev = r.avg_latency;
    }
}
