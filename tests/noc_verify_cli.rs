//! End-to-end test of the `noc-verify` CLI contract (ISSUE 6 satellite):
//! exit code 0 with parseable `--json` output when every preset passes,
//! exit code 2 on usage errors, and PASS lines in the human format.
//!
//! Exit code 1 — a real violation — is exercised through the
//! `--negative torus-no-dateline` demonstration (ISSUE 9 satellite): the
//! binary builds a torus whose VCs ignore the dateline and must report a
//! concrete CDG cycle crossing a wraparound link.

use serde::json::Value;
use std::process::Command;

fn noc_verify() -> Command {
    Command::new(env!("CARGO_BIN_EXE_noc-verify"))
}

#[test]
fn json_mode_reports_all_presets_passing_with_exit_zero() {
    let out = noc_verify().args(["--json", "--k", "4"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let v = serde::json::parse(&text).expect("stdout is valid JSON");
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(v.field("k").unwrap().as_u64().unwrap(), 4);
    let rows = v.field("presets").unwrap().as_array().unwrap();
    assert!(!rows.is_empty());
    let mut passes = 0;
    for row in rows {
        match row.field("status").unwrap().as_str().unwrap() {
            "pass" => {
                passes += 1;
                assert!(row.field("violations").unwrap().as_array().unwrap().is_empty());
                assert!(row.field("stats").unwrap().field("pairs").unwrap().as_u64().unwrap() > 0);
            }
            "skip" => {}
            other => panic!("unexpected status {other:?} for {:?}", row.field("preset")),
        }
    }
    assert!(passes > 0, "at least one preset must actually be verified");
}

#[test]
fn single_preset_filter_works_in_json_mode() {
    let out = noc_verify().args(["--json", "--preset", "CP-CR-4VC"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    let v = serde::json::parse(&text).unwrap();
    let rows = v.field("presets").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("preset").unwrap().as_str().unwrap(), "CP-CR-4VC");
}

#[test]
fn usage_errors_exit_with_code_two() {
    for bad in [&["--bogus"][..], &["--preset"], &["--k", "1"], &["--preset", "no-such"]] {
        let out = noc_verify().args(bad).output().expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {bad:?} must be a usage error; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn negative_witness_json_carries_the_wrap_crossing_cycle() {
    let out = noc_verify()
        .args(["--json", "--negative", "torus-no-dateline", "--k", "4"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "the demonstrated violation must exit 1; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let v = serde::json::parse(&text).expect("stdout is valid JSON");
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(false));
    assert_eq!(v.field("negative").unwrap().as_str().unwrap(), "torus-no-dateline");
    let rows = v.field("presets").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("status").unwrap().as_str().unwrap(), "fail");
    let violations = rows[0].field("violations").unwrap().as_array().unwrap();
    assert!(!violations.is_empty(), "the witness must ride in the JSON report");
    let all = violations.iter().map(|v| v.as_str().unwrap()).collect::<Vec<_>>().join("\n");
    assert!(all.contains("cycle"), "no dependency cycle in: {all}");
    // The cycle must cross a wraparound link: on a k=4 torus those read
    // (3,y)->(0,y), (0,y)->(3,y), (x,3)->(x,0) or (x,0)->(x,3).
    let crosses_wrap = (0..4).any(|i| {
        all.contains(&format!("(3,{i})->(0,{i})"))
            || all.contains(&format!("(0,{i})->(3,{i})"))
            || all.contains(&format!("({i},3)->({i},0)"))
            || all.contains(&format!("({i},0)->({i},3)"))
    });
    assert!(crosses_wrap, "cycle does not cross the wraparound link: {all}");
}

#[test]
fn negative_witness_rejects_unknown_names() {
    let out = noc_verify().args(["--negative", "no-such-witness"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn human_mode_prints_pass_lines_and_exits_zero() {
    let out = noc_verify().args(["--k", "4"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().any(|l| l.contains("PASS")), "no PASS line in:\n{text}");
    assert!(!text.contains("FAIL"));
}
