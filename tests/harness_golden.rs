//! Tier-1 golden-snapshot regression test: the tiny sweep's measured
//! numbers must match the fingerprints checked into `tests/golden/`, and
//! must not depend on the worker count.
//!
//! When a simulator change intentionally moves the numbers, refresh the
//! snapshot with
//! `cargo run --release --bin tenoc -- sweep --tiny --golden tests/golden/tiny.jsonl --bless`
//! and review the diff like any other code change.

use tenoc::harness::{check_fingerprints, engine, from_jsonl, tiny_grid, to_jsonl};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/tiny.jsonl")
}

#[test]
fn tiny_sweep_matches_checked_in_fingerprints() {
    let golden_text = std::fs::read_to_string(golden_path()).expect("golden snapshot present");
    let golden = from_jsonl(&golden_text).expect("golden snapshot parses");
    assert_eq!(golden.len(), tiny_grid().len(), "snapshot covers the whole grid");
    for g in &golden {
        assert!(g.fingerprint_valid(), "checked-in record {} is self-consistent", g.key());
    }
    let records = engine::run_sweep(&tiny_grid(), tenoc::harness::jobs_from_env());
    if let Err(problems) = check_fingerprints(&records, &golden) {
        panic!(
            "golden sweep drifted ({} problems):\n  {}\nif intended, re-bless with \
             `cargo run --release --bin tenoc -- sweep --tiny --golden tests/golden/tiny.jsonl --bless`",
            problems.len(),
            problems.join("\n  ")
        );
    }
}

#[test]
fn tiny_sweep_is_jobs_invariant() {
    // The determinism contract at the byte level: the serialized sweep is
    // identical no matter how many workers ran it.
    let grid = tiny_grid();
    let seq = engine::run_sweep(&grid, 1);
    let par = engine::run_sweep(&grid, 4);
    assert_eq!(to_jsonl(&seq), to_jsonl(&par), "jobs=4 must reproduce jobs=1 byte-for-byte");
}
