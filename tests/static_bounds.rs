//! Tier-1 acceptance tests for the static load analyzer (ISSUE 6): for
//! every shipped physical preset the static saturation-throughput bound
//! must dominate the open-loop measured accepted throughput, and on the
//! throughput-effective design point the statically predicted hottest
//! channel must be the telemetry heatmap's hottest link.
//!
//! The runs here use short pinned windows so the whole file stays cheap
//! in debug builds; `tenoc_harness::xval` documents why the throughput
//! comparison filters to rate points where the fabric keeps up with the
//! offered matrix (past saturation the delivered mix drifts away from
//! the matrix the bound is about).

use tenoc::core::presets::Preset;
use tenoc::harness::{cross_validate, XvalConfig};
use tenoc::verify::load::{analyze_load, TrafficMatrix};

/// Short-window sweep (this file also runs in debug builds):
/// below-saturation points and one past it, enough to exercise both
/// sides of the keep-up filter everywhere. The 0.02 point matters on the
/// torus, whose dateline-split VCs congest the fabric below the static
/// channel-bandwidth bound earlier than any mesh preset.
fn quick_cfg() -> XvalConfig {
    XvalConfig {
        rates: vec![0.02, 0.05, 0.12, 0.3],
        warmup: 800,
        measure: 3_000,
        drain: 5_000,
        ..XvalConfig::default()
    }
}

/// The distinct unsliced physical fabrics behind the named presets.
fn physical_nets() -> Vec<(String, tenoc::noc::NetworkConfig)> {
    let mut out: Vec<(String, tenoc::noc::NetworkConfig)> = Vec::new();
    for p in Preset::NAMED {
        let icnt = p.icnt(6);
        if matches!(
            icnt,
            tenoc::core::system::IcntConfig::Perfect(_)
                | tenoc::core::system::IcntConfig::BwLimited(_, _)
        ) {
            continue;
        }
        let net = icnt.net().clone();
        if out.iter().any(|(_, n)| *n == net) {
            continue;
        }
        out.push((p.label(), net));
    }
    out
}

#[test]
fn static_bound_and_latency_floor_hold_on_every_preset() {
    // One cross-validation per distinct fabric covers both acceptance
    // assertions (the sweep is the expensive part, so don't repeat it).
    let cfg = quick_cfg();
    let mut failures = Vec::new();
    for (label, net) in physical_nets() {
        let r = cross_validate(&label, &net, &cfg);
        if !r.points.iter().any(|p| p.keeping_up) {
            failures
                .push(format!("{label}: no rate point kept up; sweep cannot witness the bound"));
        }
        if !r.bound_sound {
            failures.push(format!(
                "{label}: sustained {:.4} exceeds static bound {:.4}",
                r.max_sustained, r.accepted_bound
            ));
        }
        if !r.latency_floor {
            failures.push(format!(
                "{label}: static zero-load latency (req {:.2} / rep {:.2}) exceeds \
                 measured low-rate means (req {:.2} / rep {:.2})",
                r.static_request_latency,
                r.static_reply_latency,
                r.measured_request_latency,
                r.measured_reply_latency
            ));
        }
    }
    assert!(failures.is_empty(), "cross-validation failures:\n  {}", failures.join("\n  "));
}

#[test]
fn predicted_hottest_channel_matches_telemetry_on_thr_eff() {
    // The thr-eff preset is a double network; the open-loop harness
    // drives its unsliced physical fabric, so the static side analyzes
    // the same single network (as everywhere in the xval module).
    let icnt = Preset::ThroughputEffective.icnt(6);
    let net = icnt.net().clone();
    let r = cross_validate("Thr-Eff", &net, &quick_cfg());
    assert!(
        r.hottest_match,
        "observed hottest link {} not among statically predicted {:?}",
        r.observed_hottest, r.predicted_hottest
    );
}

#[test]
fn uniform_and_transpose_matrices_are_analyzable_on_every_preset() {
    // The synthetic matrices must produce finite, positive bounds on
    // every legal fabric (checkerboard meshes may skip odd-parity pairs,
    // which the report discloses instead of mispricing).
    for (label, net) in physical_nets() {
        for m in [TrafficMatrix::Uniform, TrafficMatrix::Transpose] {
            let rep = analyze_load(&net, m);
            assert!(
                rep.saturation_rate > 0.0 && rep.saturation_rate.is_finite(),
                "{label}/{}: degenerate saturation rate {}",
                m.label(),
                rep.saturation_rate
            );
            assert!(
                rep.demands_total > rep.demands_unroutable,
                "{label}/{}: no routable demand",
                m.label()
            );
        }
    }
}
