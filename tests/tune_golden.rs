//! Tier-1 regression tests over the tuner's checked-in frontier
//! snapshot (`tests/golden/frontier.json`).
//!
//! The snapshot is produced by the full staged search (`tenoc tune --k 6
//! --golden tests/golden/frontier.json --bless`), which is a release-
//! build job (~20 s; CI re-runs it and diffs byte-for-byte at two worker
//! counts). These tests stay cheap by *parsing* the snapshot and pinning
//! the properties the search exists to deliver: the paper's
//! throughput-effective design is rediscovered on the Pareto frontier,
//! and every enumerated grid point is accounted for in the per-stage
//! counts — no silent truncation.

use tenoc::tune::TuneReport;

fn golden() -> TuneReport {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/frontier.json");
    let text = std::fs::read_to_string(path).expect("tests/golden/frontier.json present");
    serde_json::from_str(&text).expect("frontier snapshot parses as a TuneReport")
}

#[test]
fn frontier_snapshot_rediscovers_the_throughput_effective_design() {
    let report = golden();
    assert!(
        report.frontier_has_alias("Thr-Eff"),
        "the k=6 frontier must contain the paper's throughput-effective design; got: {:?}",
        report.frontier.iter().map(|p| p.name.as_str()).collect::<Vec<_>>()
    );
    // And the report must say where the other organizations landed.
    for preset in ["Torus-DOR", "CMesh-DOR", "TB-DOR"] {
        let np = report
            .named_points
            .iter()
            .find(|n| n.preset == preset)
            .unwrap_or_else(|| panic!("{preset} missing from named_points"));
        assert_eq!(np.stage_reached, "finalist", "pinned {preset} must ride to the finalists");
    }
}

#[test]
fn frontier_snapshot_accounts_for_every_grid_point() {
    let report = golden();
    let c = &report.counts;
    assert_eq!(
        c.enumerated + c.pinned_out_of_grid,
        c.unconstructible + c.rejected + c.legal,
        "per-stage counts must balance: every enumerated point is somewhere"
    );
    assert!(c.legal >= c.stage1_promoted);
    assert!(c.stage1_promoted >= c.stage2_promoted);
    assert!(c.finalists >= c.frontier && c.frontier >= 1);
    // Every rejection in the tally is backed by named witnesses.
    let rejected_names: u64 = report.rejections.iter().map(|r| r.names.len() as u64).sum();
    assert_eq!(rejected_names, c.unconstructible + c.rejected);
}

#[test]
fn frontier_points_carry_resolved_configs_and_heatmaps() {
    let report = golden();
    assert_eq!(report.k, 6);
    for p in &report.frontier {
        assert!(!p.config_hash.is_empty(), "{}: fingerprint missing", p.name);
        assert!(p.resolved.field("kind").is_ok(), "{}: resolved config missing", p.name);
        assert!(!p.heatmaps.is_empty(), "{}: telemetry heatmap missing", p.name);
        for h in &p.heatmaps {
            assert_eq!(h.heatmap.len(), 6, "{}: heatmap is k rows", p.name);
        }
    }
    // Frontier is sorted by area with strictly increasing performance.
    for w in report.frontier.windows(2) {
        assert!(w[0].area_mm2 <= w[1].area_mm2);
        assert!(w[0].hm_ipc < w[1].hm_ipc);
    }
}
