//! Offline drop-in subset of the `serde_json` API, delegating to the
//! vendored `serde` shim's value tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::json::{Error, Value};

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the shim's self-describing data model; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_compact())
}

/// Serializes a value to pretty-printed JSON text.
///
/// # Errors
///
/// Never fails for the shim's self-describing data model; the `Result`
/// mirrors the upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(s)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scalar_roundtrip() {
        let text = super::to_string(&42u64).unwrap();
        assert_eq!(text, "42");
        let back: u64 = super::from_str(&text).unwrap();
        assert_eq!(back, 42);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.5f64, -2.25, 0.0];
        let back: Vec<f64> = super::from_str(&super::to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(super::from_str::<u64>("not json").is_err());
    }
}
