//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest its tests use: the [`proptest!`] macro family,
//! range / `any` / `select` / `collection::vec` strategies, tuple
//! composition and [`Strategy::prop_map`]. Generation is deterministic
//! (seeded from the test name), there is no shrinking, and
//! `*.proptest-regressions` files are ignored — a failing case prints the
//! full generated input instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Everything a proptest-style test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)` (rejection sampling, `span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % span;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only (the shim has no NaN-aware shrinking story).
        f64::from_bits(rng.next_u64() & !(0x7ff_u64 << 52) | (1023_u64 << 52)) - 1.5
    }
}

/// Strategy over a type's whole (finite) domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Namespaced strategy constructors (`prop::sample`, `prop::collection`).
pub mod prop {
    /// Strategies drawing from explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy yielding a uniformly chosen element of a vector.
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Chooses uniformly among the given values.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }
    }

    /// Strategies over `Option`.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `None` half the time, `Some(inner)` otherwise.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Wraps a strategy's values in `Option` (50% `Some`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Strategies for collections.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy yielding vectors of strategy-generated elements.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors whose length is drawn from `len` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` filtered the input; the case is retried.
    Reject,
}

/// Executes a strategy/closure pair for a configured number of cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner seeded deterministically from the test name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { config, rng: TestRng::new(seed) }
    }

    /// Runs the test body until `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// printing the generated input, or when `prop_assume!` rejects too
    /// many inputs.
    pub fn run<S>(
        &mut self,
        strategy: &S,
        mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) where
        S: Strategy,
        S::Value: Debug,
    {
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = 1024 + u64::from(self.config.cases) * 64;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let shown = format!("{value:?}");
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "prop_assume! rejected {rejected} inputs (only {passed} cases passed)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case {} failed: {msg}\n  input: {shown}", passed + 1)
                }
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Filters the current generated input; the case is retried, not failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(...)]` header and one or more
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = crate::TestRng::new(2);
        let strat =
            prop::collection::vec((prop::sample::select(vec![10u32, 20, 30]), any::<bool>()), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|(x, _)| [10, 20, 30].contains(x)));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(3);
        let strat = (1u32..5, 1u32..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=8).contains(&v));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(16), "det");
            runner.run(&(0u64..1000,), |(v,)| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_smoke(a in 0u8..10, flip in any::<bool>()) {
            prop_assume!(a != 9);
            prop_assert!(a < 9, "a = {a}");
            prop_assert_eq!(a as u64 + 1, u64::from(a) + 1);
            prop_assert_ne!(i32::from(a) - 20, i32::from(flip));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 1 failed")]
    fn failure_panics_with_input() {
        let mut runner = crate::TestRunner::new(crate::ProptestConfig::with_cases(4), "boom");
        runner.run(&(0u64..10,), |(v,)| {
            if v < 100 {
                return Err(crate::TestCaseError::Fail(format!("v = {v}")));
            }
            Ok(())
        });
    }
}
