//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal wall-clock harness under the `criterion` name: it runs each
//! benchmark closure `sample_size` times and prints min / mean / max
//! per-iteration times. There is no statistical analysis, warm-up control,
//! or HTML reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("{id}: no samples recorded");
            return self;
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id}: [{} {} {}] ({} samples)",
            format_time(min),
            format_time(mean),
            format_time(max),
            samples.len()
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-sample timing collector handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_all_samples() {
        let mut count = 0u64;
        super::Criterion::default().sample_size(5).bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
            });
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(super::black_box(41) + 1, 42);
    }
}
