//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`]
//! extension methods (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`]
//! seeding from a `u64`, and [`rngs::SmallRng`] backed by a deterministic
//! xoshiro256++ generator (the same family the real `SmallRng` uses on
//! 64-bit platforms). Streams are deterministic per seed but are not
//! bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        distributions::unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-range sampling used by [`Rng::gen_range`]; `lo + next_u64() %
/// span` with rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: draw until the value falls inside the largest
    // multiple of `span`, which removes modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

pub use rngs::SmallRng;

/// Distribution plumbing for [`Rng::gen`] and [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        // 53 significand bits give the standard uniform double.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types samplable by [`super::Rng::gen`] (the `Standard` distribution).
    pub trait Standard {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }

    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64()) as f32
        }
    }

    /// Ranges accepted by [`super::Rng::gen_range`]. The element type is a
    /// trait parameter (as in upstream `rand`) so integer-literal ranges
    /// infer their type from the call site.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + super::uniform_u64(rng, span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    lo + super::uniform_u64(rng, span) as $t
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize);

    macro_rules! impl_sample_range_signed {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(super::uniform_u64(rng, span) as i64) as $t
                }
            }
        )*};
    }
    impl_sample_range_signed!(i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Rng, SeedableRng, SmallRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u16..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 produced {hits}/10000");
    }

    #[test]
    fn uniform_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
