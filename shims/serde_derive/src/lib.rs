//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` shim.
//!
//! The build environment has no crates.io access, so this crate parses the
//! derive input by walking the raw [`proc_macro::TokenStream`] instead of
//! depending on `syn`/`quote`. It supports exactly the shapes this
//! workspace uses: structs with named fields and fieldless enums
//! (discriminants allowed). Anything else — tuple structs, generics,
//! enums with payloads — fails the build with an explicit message rather
//! than generating wrong code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree construction).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::json::Value {{\n\
                         ::serde::json::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}",
                name = name,
                pairs = pairs.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\"")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::json::Value {{\n\
                         ::serde::json::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}",
                name = name,
                arms = arms.join(", ")
            )
        }
    };
    code.parse().expect("derive(Serialize): generated code must parse")
}

/// Derives `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::json::Value)\n\
                         -> Result<Self, ::serde::json::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                name = name,
                inits = inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v})")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::json::Value)\n\
                         -> Result<Self, ::serde::json::Error> {{\n\
                         match v.as_str()? {{\n\
                             {arms},\n\
                             other => Err(::serde::json::Error::msg(format!(\n\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = name,
                arms = arms.join(",\n")
            )
        }
    };
    code.parse().expect("derive(Deserialize): generated code must parse")
}

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Walks the derive input: outer attributes, visibility, `struct`/`enum`
/// keyword, type name, then the brace-delimited body.
fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();

    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic type `{name}` is not supported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde shim derive: tuple struct `{name}` is not supported")
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            panic!("serde shim derive: unit struct `{name}` is not supported")
        }
        Some(other) => panic!("serde shim derive: unexpected token {other} in `{name}`"),
        None => panic!("serde shim derive: missing body for `{name}`"),
    };

    match keyword.as_str() {
        "struct" => Shape::Struct { name, fields: parse_named_fields(body.stream()) },
        "enum" => Shape::Enum { name, variants: parse_unit_variants(body.stream()) },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes any number of `#[...]` outer attributes (doc comments included).
fn skip_attributes(tokens: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde shim derive: malformed attribute, found {other:?}"),
        }
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Extracts field names from a named-field struct body. Field types are
/// skipped by consuming tokens until a comma at angle-bracket depth zero
/// (parenthesised/bracketed types arrive as opaque groups, so only `<`/`>`
/// need tracking).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();

    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => {
                panic!("serde shim derive: expected field name, found {other} (named-field structs only)")
            }
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0usize;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }

    fields
}

/// Extracts variant names from a fieldless enum body. Explicit
/// discriminants (`Name = expr`) are skipped; payload-carrying variants
/// are rejected.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();

    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde shim derive: expected variant name, found {other}"),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip the discriminant expression.
                for tok in tokens.by_ref() {
                    if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
                variants.push(name);
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde shim derive: variant `{name}` carries data (fieldless enums only)")
            }
            Some(other) => {
                panic!("serde shim derive: unexpected token {other} after variant `{name}`")
            }
        }
    }

    variants
}
