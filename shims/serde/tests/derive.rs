//! End-to-end checks of the shimmed `#[derive(Serialize, Deserialize)]`
//! macros (they emit `::serde::` paths, so they can only be exercised from
//! outside the `serde` crate itself).

use serde::{json, Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Inner {
    label: String,
    weight: f64,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
enum Mode {
    Fast = 0,
    Slow = 1,
    Adaptive,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Outer {
    count: u64,
    offset: i32,
    mode: Mode,
    items: Vec<Inner>,
    maybe: Option<u8>,
    pair: (u16, bool),
}

fn sample() -> Outer {
    Outer {
        count: u64::MAX,
        offset: -12,
        mode: Mode::Adaptive,
        items: vec![
            Inner { label: "a\"b".to_string(), weight: 0.1 + 0.2 },
            Inner { label: String::new(), weight: -1.5 },
        ],
        maybe: None,
        pair: (9, true),
    }
}

#[test]
fn struct_roundtrip_is_exact() {
    let orig = sample();
    let text = orig.to_value().to_json_pretty();
    let back = Outer::from_value(&json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, orig);
}

#[test]
fn enum_serializes_as_variant_name() {
    assert_eq!(Mode::Fast.to_value(), json::Value::String("Fast".to_string()));
    let v = json::Value::String("Slow".to_string());
    assert_eq!(Mode::from_value(&v).unwrap(), Mode::Slow);
}

#[test]
fn unknown_variant_is_an_error() {
    let v = json::Value::String("Bogus".to_string());
    let err = Mode::from_value(&v).unwrap_err();
    assert!(err.to_string().contains("Bogus"));
}

#[test]
fn missing_field_is_an_error() {
    let v = json::parse(r#"{"label":"x"}"#).unwrap();
    let err = Inner::from_value(&v).unwrap_err();
    assert!(err.to_string().contains("weight"));
}
