//! Offline drop-in subset of the `serde` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal self-describing serialization layer under the `serde` name:
//! values serialize into a [`json::Value`] tree and deserialize back from
//! one. The `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the sibling `serde_derive` shim) support structs with named fields and
//! fieldless enums — exactly the shapes this workspace uses. The data
//! model is JSON-only; there is no `Serializer`/`Deserializer` trait pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Types convertible into a [`json::Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> json::Value;
}

/// Types reconstructible from a [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a tree.
    ///
    /// # Errors
    ///
    /// Returns [`json::Error`] when the tree does not match the expected
    /// shape (missing field, wrong type, unknown enum variant).
    fn from_value(v: &json::Value) -> Result<Self, json::Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| json::Error::msg(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| json::Error::msg(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> json::Value {
        json::Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(json::Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        Ok(v.as_str()?.to_owned())
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| json::Error::msg(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(x) => x.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

/// `Value` serializes as itself, so derived types can embed raw JSON
/// trees (e.g. an already-resolved configuration) without re-encoding.
impl Serialize for json::Value {
    fn to_value(&self) -> json::Value {
        self.clone()
    }
}

impl Deserialize for json::Value {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let items = v.as_array()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(json::Error::msg(format!(
                        "expected tuple of length {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
