//! The JSON value tree, text writer and parser backing the serde shim.

use std::fmt;

/// A parsed or to-be-written JSON value.
///
/// Integers keep their signedness ([`Value::U64`] / [`Value::I64`]) so that
/// 64-bit counters round-trip exactly; floats use the shortest
/// representation that round-trips (`{:?}` formatting).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative (or explicitly signed) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!("expected object, found {}", other.kind()))),
        }
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-integral or negative values.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(x as u64),
            ref other => {
                Err(Error::msg(format!("expected unsigned integer, found {}", other.kind())))
            }
        }
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-integral or out-of-range values.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(x) => Ok(x),
            Value::U64(x) => {
                i64::try_from(x).map_err(|_| Error::msg(format!("integer {x} overflows i64")))
            }
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Ok(x as i64),
            ref other => Err(Error::msg(format!("expected integer, found {}", other.kind()))),
        }
    }

    /// The value as an `f64` (integers convert losslessly where possible).
    ///
    /// # Errors
    ///
    /// Returns an error for non-numeric values.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::msg(format!("expected number, found {}", other.kind()))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns an error for non-string values.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns an error for non-array values.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }

    /// Renders compact JSON text.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON text (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, sep) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth), ": "),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(x) => out.push_str(&x.to_string()),
            Value::I64(x) => out.push_str(&x.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes `.0` for integral
                    // floats so the type survives re-parsing.
                    out.push_str(&format!("{x:?}"));
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_json_string(out, k);
                    out.push_str(sep);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] (with byte offset) on malformed input.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_json_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-2.25}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json_compact(), text);
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn float_precision_roundtrips() {
        let v = Value::F64(0.1 + 0.2);
        let back = parse(&v.to_json_compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_precision_roundtrips() {
        let v = Value::U64(u64::MAX);
        assert_eq!(parse(&v.to_json_compact()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{not json", "[1,", "\"unterminated", "tru", "{\"a\" 1}", "1 2"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""aA\t\\\"é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\t\\\"é");
    }

    #[test]
    fn field_lookup() {
        let v = parse(r#"{"x":3}"#).unwrap();
        assert_eq!(v.field("x").unwrap().as_u64().unwrap(), 3);
        assert!(v.field("y").is_err());
    }
}
